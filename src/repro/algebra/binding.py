"""Bindings and binding tables — Appendix A.1 of the paper.

A *binding* is a partial function from variables to graph objects or
literal values. The MATCH clause produces a *set* of bindings, which the
paper also visualizes as a table with one column per variable; both views
are provided here. Bindings are immutable and hashable so tables behave
as sets (duplicate bindings collapse), exactly matching the formal model.

Partiality matters: a variable missing from a binding's domain (e.g. after
an OPTIONAL block that did not match) is *compatible* with any value of
that variable in another binding — compatibility only constrains the
intersection of the domains.

Storage layout
--------------

:class:`BindingTable` is **columnar**: one value vector per variable plus
the :data:`ABSENT` sentinel as a presence mask for partial bindings. Set
semantics is enforced on construction by deduplicating on the tuple of a
row's values across all stored variables (``ABSENT`` included, so two rows
with different domains never collapse). :class:`Binding` remains the cheap
row view the evaluator passes to expression code: tables materialize row
views lazily (and cache them), so per-row consumers — ``eval/context.py``,
``eval/expressions.py``, user-facing iteration — see exactly the set of
bindings of the formal semantics, while the columnar operators in
``eval/match.py`` and friends work on the vectors directly.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = ["ABSENT", "Binding", "BindingTable", "EMPTY_BINDING"]


class _Absent:
    """Presence-mask sentinel: 'this row does not bind this variable'."""

    _instance = None
    __slots__ = ()

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<absent>"


ABSENT = _Absent()


class Binding(Mapping[str, Any]):
    """An immutable partial assignment of variables to values."""

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Optional[Mapping[str, Any]] = None) -> None:
        self._data: Dict[str, Any] = dict(data or {})
        self._hash: Optional[int] = None

    @classmethod
    def _adopt(cls, data: Dict[str, Any]) -> "Binding":
        """A row view over *data* without copying (caller cedes ownership)."""
        view = cls.__new__(cls)
        view._data = data
        view._hash = None
        return view

    # Mapping protocol -------------------------------------------------
    def __getitem__(self, var: str) -> Any:
        return self._data[var]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, var: object) -> bool:
        return var in self._data

    # Set-of-bindings support -------------------------------------------
    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._data.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Binding):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{var}={self._data[var]!r}" for var in sorted(self._data)
        )
        return "{" + inner + "}"

    # Operations ---------------------------------------------------------
    @property
    def domain(self) -> FrozenSet[str]:
        """``dom(mu)`` — the set of variables this binding assigns."""
        return frozenset(self._data)

    def get(self, var: str, default: Any = None) -> Any:
        return self._data.get(var, default)

    def compatible(self, other: "Binding") -> bool:
        """``mu1 ~ mu2``: agreement on the intersection of the domains."""
        if len(self._data) > len(other._data):
            self, other = other, self
        for var, value in self._data.items():
            if var in other._data and other._data[var] != value:
                return False
        return True

    def merge(self, other: "Binding") -> "Binding":
        """``mu1 u mu2`` for compatible bindings (caller checks compatibility)."""
        merged = dict(self._data)
        merged.update(other._data)
        return Binding._adopt(merged)

    def extend(self, var: str, value: Any) -> "Binding":
        """A new binding that additionally maps *var* to *value*."""
        extended = dict(self._data)
        extended[var] = value
        return Binding._adopt(extended)

    def extend_many(self, items: Mapping[str, Any]) -> "Binding":
        """A new binding with all of *items* added."""
        extended = dict(self._data)
        extended.update(items)
        return Binding._adopt(extended)

    def project(self, variables: Iterable[str]) -> "Binding":
        """Restrict the binding to *variables* (missing ones are dropped)."""
        return Binding._adopt(
            {var: self._data[var] for var in variables if var in self._data}
        )

    def drop(self, variables: Iterable[str]) -> "Binding":
        """Remove *variables* from the binding's domain."""
        doomed = set(variables)
        return Binding._adopt(
            {var: val for var, val in self._data.items() if var not in doomed}
        )


EMPTY_BINDING = Binding()


class BindingTable:
    """A set of bindings, stored columnar, with ordered display columns.

    The *columns* record every variable that may appear in the table (the
    union of pattern variables), while individual rows may be partial.
    Internally the table keeps one vector per variable (``ABSENT`` marking
    rows outside a variable's domain); rows are deduplicated on
    construction, so the table is semantically the set the formal
    semantics manipulates. Row :class:`Binding` views are materialized
    lazily and cached.
    """

    __slots__ = ("_columns", "_vars", "_data", "_nrows", "_row_views")

    def __init__(
        self,
        columns: Sequence[str] = (),
        rows: Iterable[Binding] = (),
    ) -> None:
        self._columns: Tuple[str, ...] = tuple(dict.fromkeys(columns))
        row_list = rows if isinstance(rows, (list, tuple)) else list(rows)
        var_list: List[str] = list(self._columns)
        var_set = set(var_list)
        for row in row_list:
            for var in row:
                if var not in var_set:
                    var_set.add(var)
                    var_list.append(var)
        data: Dict[str, List[Any]] = {var: [] for var in var_list}
        nrows = 0
        seen = set()
        for row in row_list:
            get = row.get
            key = tuple(get(var, ABSENT) for var in var_list)
            if key in seen:
                continue
            seen.add(key)
            nrows += 1
            for var, value in zip(var_list, key):
                data[var].append(value)
        if not var_list and row_list:
            nrows = 1  # every row is the empty binding
        self._vars: Tuple[str, ...] = tuple(var_list)
        self._data = data
        self._nrows = nrows
        self._row_views: Optional[Tuple[Binding, ...]] = None

    # ------------------------------------------------------------------
    # Columnar construction (the fast path used by the operators)
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        columns: Sequence[str],
        variables: Sequence[str],
        data: Mapping[str, List[Any]],
        nrows: int,
        dedup: bool = True,
    ) -> "BindingTable":
        """Build a table directly from column vectors.

        *variables* names the stored vectors (``data`` keys) in display
        order; *columns* is the user-visible column list and may mention
        variables with no vector (declared-but-never-bound). Vectors must
        all have length *nrows* and use :data:`ABSENT` for missing values.
        With ``dedup=True`` duplicate rows are collapsed (first occurrence
        wins); pass ``dedup=False`` only when rows are known unique (e.g.
        a filter of an already-deduplicated table). The vectors are
        adopted, not copied — callers cede ownership.
        """
        table = cls.__new__(cls)
        table._columns = tuple(dict.fromkeys(columns))
        variables = tuple(variables)
        if not variables:
            nrows = min(nrows, 1)
            data = {}
        elif dedup and nrows > 1:
            vectors = [data[var] for var in variables]
            seen = set()
            keep: List[int] = []
            for index, key in enumerate(zip(*vectors)):
                if key not in seen:
                    seen.add(key)
                    keep.append(index)
            if len(keep) != nrows:
                data = {
                    var: [vector[i] for i in keep]
                    for var, vector in zip(variables, vectors)
                }
                nrows = len(keep)
        table._vars = variables
        table._data = dict(data)
        table._nrows = nrows
        table._row_views = None
        return table

    @classmethod
    def unit(cls) -> "BindingTable":
        """The table containing only the empty binding (join identity)."""
        return cls((), (EMPTY_BINDING,))

    @classmethod
    def empty(cls, columns: Sequence[str] = ()) -> "BindingTable":
        """The table with no rows (join annihilator)."""
        return cls(columns, ())

    # ------------------------------------------------------------------
    # Columnar accessors
    # ------------------------------------------------------------------
    @property
    def variables(self) -> Tuple[str, ...]:
        """All stored variables (display columns first, extras after)."""
        return self._vars

    def column_values(self, var: str) -> Optional[List[Any]]:
        """The vector of *var* (``ABSENT``-masked), or None if unstored.

        The returned list is the table's internal storage — callers must
        not mutate it.
        """
        return self._data.get(var)

    def present_count(self, var: str) -> int:
        """How many rows bind *var* (0 when the vector is unstored)."""
        vector = self._data.get(var)
        if vector is None:
            return 0
        return sum(1 for value in vector if value is not ABSENT)

    def row_at(self, index: int) -> Binding:
        """The row view at *index* (materializes lazily, like ``rows``)."""
        return self.rows[index]

    def select_rows(self, indices: Sequence[int]) -> "BindingTable":
        """The sub-table of *indices*, in that order (no re-dedup)."""
        data = {
            var: [vector[i] for i in indices]
            for var, vector in self._data.items()
        }
        table = BindingTable.from_columns(
            self._columns, self._vars, data, len(indices), dedup=False
        )
        if self._row_views is not None:
            table._row_views = tuple(self._row_views[i] for i in indices)
        return table

    # ------------------------------------------------------------------
    @property
    def columns(self) -> Tuple[str, ...]:
        return self._columns

    @property
    def rows(self) -> Tuple[Binding, ...]:
        if self._row_views is None:
            vars_ = self._vars
            vectors = [self._data[var] for var in vars_]
            views: List[Binding] = []
            for index in range(self._nrows):
                row: Dict[str, Any] = {}
                for var, vector in zip(vars_, vectors):
                    value = vector[index]
                    if value is not ABSENT:
                        row[var] = value
                views.append(Binding._adopt(row))
            self._row_views = tuple(views)
        return self._row_views

    def __len__(self) -> int:
        return self._nrows

    def __iter__(self) -> Iterator[Binding]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self._nrows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BindingTable):
            return NotImplemented
        return set(self.rows) == set(other.rows)

    def __repr__(self) -> str:
        return f"<BindingTable {list(self._columns)} with {self._nrows} rows>"

    # ------------------------------------------------------------------
    def with_columns(self, columns: Sequence[str]) -> "BindingTable":
        """The same rows under a widened column list."""
        widened = BindingTable.from_columns(
            tuple(self._columns) + tuple(columns),
            self._vars,
            self._data,
            self._nrows,
            dedup=False,
        )
        widened._row_views = self._row_views
        return widened

    def maximal_domain(self) -> FrozenSet[str]:
        """The union of all row domains (used by COUNT(*) semantics)."""
        return frozenset(
            var
            for var, vector in self._data.items()
            if any(value is not ABSENT for value in vector)
        )

    def project(self, variables: Sequence[str]) -> "BindingTable":
        """Project (and deduplicate) onto *variables*."""
        variables = tuple(dict.fromkeys(variables))
        stored = tuple(var for var in variables if var in self._data)
        data = {var: list(self._data[var]) for var in stored}
        return BindingTable.from_columns(
            variables, stored, data, self._nrows, dedup=True
        )

    def drop(self, variables: Iterable[str]) -> "BindingTable":
        """Drop *variables* from columns and rows (deduplicates)."""
        doomed = set(variables)
        remaining = tuple(c for c in self._columns if c not in doomed)
        kept = tuple(var for var in self._vars if var not in doomed)
        data = {var: list(self._data[var]) for var in kept}
        return BindingTable.from_columns(
            remaining, kept, data, self._nrows, dedup=True
        )

    def filter(self, predicate) -> "BindingTable":
        """Keep rows satisfying *predicate* (a ``Binding -> bool``)."""
        rows = self.rows
        keep = [i for i in range(self._nrows) if predicate(rows[i])]
        if len(keep) == self._nrows:
            return self
        return self.select_rows(keep)

    def pretty(self, limit: int = 25) -> str:
        """Render the table the way the paper prints binding tables."""
        columns = list(self._columns) or sorted(self.maximal_domain())
        widths = {c: len(c) for c in columns}
        rendered: List[List[str]] = []
        for row in self.rows[:limit]:
            cells = []
            for column in columns:
                if column in row:
                    text = _render_cell(row[column])
                else:
                    text = ""
                widths[column] = max(widths[column], len(text))
                cells.append(text)
            rendered.append(cells)
        header = " | ".join(c.ljust(widths[c]) for c in columns)
        separator = "-+-".join("-" * widths[c] for c in columns)
        lines = [header, separator]
        for cells in rendered:
            lines.append(
                " | ".join(
                    cell.ljust(widths[column])
                    for column, cell in zip(columns, cells)
                )
            )
        if self._nrows > limit:
            lines.append(f"... ({self._nrows - limit} more rows)")
        return "\n".join(lines)


def _render_cell(value: Any) -> str:
    from ..model.values import format_value_set, is_scalar, format_scalar

    if isinstance(value, frozenset):
        return format_value_set(value)
    if is_scalar(value):
        return format_scalar(value)
    return str(value)
