"""Grouping of binding tables — the ``grp`` operator of Appendix A.3.

CONSTRUCT groups the binding set by a *grouping set* Γ of variables: two
bindings are equivalent when they agree on every variable of Γ. A variable
absent from a binding's domain is its own group key (the ``MISSING``
sentinel), so partial bindings group deterministically.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from .binding import ABSENT, Binding, BindingTable

__all__ = ["MISSING", "group_key", "group_by", "presence_mask"]


class _Missing:
    """Sentinel for 'variable not bound'; sorts after every real value."""

    _instance = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<missing>"


MISSING = _Missing()


def group_key(row: Binding, variables: Sequence[str]) -> Tuple[Any, ...]:
    """The Γ-projection of a binding, with MISSING for unbound variables."""
    return tuple(row.get(var, MISSING) for var in variables)


def _sort_token(value: Any) -> str:
    return f"{type(value).__name__}:{value!r}"


def presence_mask(table: BindingTable, domain: Iterable[str]) -> List[bool]:
    """Per-row mask: does the row bind every variable of *domain*?

    The columnar form of the ``maximal_domain <= row.domain`` test the
    COUNT(*) maximality rule performs — computed once from the presence
    (non-``ABSENT``) masks of the domain's column vectors instead of per
    row view, so vectorized aggregation can count a group by summing a
    mask slice.
    """
    nrows = len(table)
    mask = [True] * nrows
    for var in domain:
        vector = table.column_values(var)
        if vector is None:
            return [False] * nrows
        mask = [m and vector[i] is not ABSENT for i, m in enumerate(mask)]
    return mask


def group_by(
    table: BindingTable, variables: Sequence[str]
) -> List[Tuple[Tuple[Any, ...], BindingTable]]:
    """Partition *table* into equivalence classes under Γ = *variables*.

    Returns ``[(key, sub-table), ...]`` sorted deterministically by key so
    that downstream identifier generation (the skolem ``new`` function) is
    reproducible run-to-run.
    """
    nrows = len(table)
    vectors = []
    for var in variables:
        vector = table.column_values(var)
        vectors.append(vector if vector is not None else [ABSENT] * nrows)
    groups: Dict[Tuple[Any, ...], List[int]] = {}
    for index in range(nrows):
        key = tuple(
            MISSING if vector[index] is ABSENT else vector[index]
            for vector in vectors
        )
        groups.setdefault(key, []).append(index)
    ordered = sorted(
        groups.items(),
        key=lambda item: tuple(_sort_token(v) for v in item[0]),
    )
    return [(key, table.select_rows(indices)) for key, indices in ordered]
