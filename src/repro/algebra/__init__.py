"""Binding tables and their operators (Appendix A.1 of the paper)."""

from .binding import EMPTY_BINDING, Binding, BindingTable
from .grouping import MISSING, group_by, group_key
from .ops import (
    cartesian_product,
    table_antijoin,
    table_join,
    table_left_join,
    table_semijoin,
    table_union,
)

__all__ = [
    "EMPTY_BINDING",
    "Binding",
    "BindingTable",
    "MISSING",
    "group_by",
    "group_key",
    "cartesian_product",
    "table_antijoin",
    "table_join",
    "table_left_join",
    "table_semijoin",
    "table_union",
]
