"""The binding-table operators of Appendix A.1.

The paper defines five operations over finite sets of bindings:

* union            ``O1 u O2``
* join             ``O1 |><| O2``  (compatible bindings merged)
* semijoin         ``O1 |>< O2``   (left bindings with a compatible right)
* antijoin         ``O1 \\ O2``    (left bindings with *no* compatible right)
* left outer join  ``O1 =|><| O2 = (O1 |><| O2) u (O1 \\ O2)``

Compatibility of partial bindings makes the join slightly subtler than a
relational natural join: a row that does not bind a shared variable joins
with *every* value of that variable. The implementation hash-partitions
rows by the subset of shared variables they actually bind, so the common
case (all rows total) remains a plain hash join.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Tuple

from .binding import ABSENT, Binding, BindingTable

__all__ = [
    "table_union",
    "table_join",
    "table_semijoin",
    "table_antijoin",
    "table_left_join",
    "cartesian_product",
]


def _merged_columns(left: BindingTable, right: BindingTable) -> Tuple[str, ...]:
    return tuple(dict.fromkeys(tuple(left.columns) + tuple(right.columns)))


def table_union(left: BindingTable, right: BindingTable) -> BindingTable:
    """``O1 u O2`` — set union of the rows (columnar concatenation)."""
    columns = _merged_columns(left, right)
    variables = tuple(
        dict.fromkeys(tuple(left.variables) + tuple(right.variables))
    )
    n_left, n_right = len(left), len(right)
    data: Dict[str, List] = {}
    for var in variables:
        left_vector = left.column_values(var)
        right_vector = right.column_values(var)
        vector = list(left_vector) if left_vector is not None else [ABSENT] * n_left
        vector.extend(right_vector if right_vector is not None else [ABSENT] * n_right)
        data[var] = vector
    return BindingTable.from_columns(
        columns, variables, data, n_left + n_right, dedup=True
    )


def _shared_variables(left: BindingTable, right: BindingTable) -> FrozenSet[str]:
    return frozenset(left.columns) & frozenset(right.columns)


def _partition(
    rows: Iterable[Binding], shared: FrozenSet[str]
) -> Dict[FrozenSet[str], List[Binding]]:
    """Group rows by which of the shared variables they actually bind."""
    partitions: Dict[FrozenSet[str], List[Binding]] = defaultdict(list)
    for row in rows:
        partitions[row.domain & shared].append(row)
    return partitions


def _join_pairs(left: BindingTable, right: BindingTable):
    """Yield all compatible (left_row, right_row) pairs via hash joins."""
    shared = _shared_variables(left, right)
    if not shared:
        for left_row in left:
            for right_row in right:
                yield left_row, right_row
        return
    left_parts = _partition(left, shared)
    right_parts = _partition(right, shared)
    for left_mask, left_rows in left_parts.items():
        for right_mask, right_rows in right_parts.items():
            common = left_mask & right_mask
            key_vars = tuple(sorted(common))
            if not key_vars:
                for left_row in left_rows:
                    for right_row in right_rows:
                        yield left_row, right_row
                continue
            index: Dict[tuple, List[Binding]] = defaultdict(list)
            for right_row in right_rows:
                index[tuple(right_row[v] for v in key_vars)].append(right_row)
            for left_row in left_rows:
                key = tuple(left_row[v] for v in key_vars)
                for right_row in index.get(key, ()):
                    yield left_row, right_row


def table_join(left: BindingTable, right: BindingTable) -> BindingTable:
    """``O1 |><| O2`` — merge every pair of compatible bindings."""
    columns = _merged_columns(left, right)
    return BindingTable(
        columns,
        (
            left_row.merge(right_row)
            for left_row, right_row in _join_pairs(left, right)
        ),
    )


def table_semijoin(left: BindingTable, right: BindingTable) -> BindingTable:
    """``O1 |>< O2`` — left rows that have a compatible right row.

    Survivors are tracked by row-view identity: a table's cached views are
    stable, so ``_join_pairs`` and the filter below see the same objects
    and no re-hashing of bindings is needed.
    """
    survivors = {id(left_row) for left_row, _ in _join_pairs(left, right)}
    return left.filter(lambda row: id(row) in survivors)


def table_antijoin(left: BindingTable, right: BindingTable) -> BindingTable:
    """``O1 \\ O2`` — left rows with *no* compatible right row."""
    blocked = {id(left_row) for left_row, _ in _join_pairs(left, right)}
    return left.filter(lambda row: id(row) not in blocked)


def table_left_join(left: BindingTable, right: BindingTable) -> BindingTable:
    """``O1 =|><| O2 = (O1 |><| O2) u (O1 \\ O2)`` — the OPTIONAL operator."""
    columns = _merged_columns(left, right)
    joined: List[Binding] = []
    matched = set()
    for left_row, right_row in _join_pairs(left, right):
        matched.add(id(left_row))
        joined.append(left_row.merge(right_row))
    for row in left:
        if id(row) not in matched:
            joined.append(row)
    return BindingTable(columns, joined)


def cartesian_product(left: BindingTable, right: BindingTable) -> BindingTable:
    """An explicit Cartesian product (join with no shared variables).

    Used by the guided-tour reproduction to print the 20-row table of
    Section 3; semantically identical to :func:`table_join` when the
    operands share no variables.
    """
    columns = _merged_columns(left, right)
    return BindingTable(
        columns,
        (
            left_row.merge(right_row)
            for left_row in left
            for right_row in right
        ),
    )
