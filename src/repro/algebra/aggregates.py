"""Aggregation functions — COUNT, SUM, MIN, MAX, AVG, COLLECT.

Appendix A.1 lists the aggregation functions inherited from relational
query languages plus COLLECT. They are evaluated over a *group* of
bindings (an equivalence class produced by grouping, or a whole table).

One deliberate semantic choice (documented in DESIGN.md): ``COUNT(*)``
counts only *maximal* bindings — those whose domain covers every variable
of the enclosing match block. This makes the paper's Figure-5 view produce
``nr_messages = 0`` for pairs whose OPTIONAL block did not match, exactly
as Section 3 asserts, while remaining the ordinary row count for tables
without partial rows.

The module is split into a value-list core (:func:`collect_values`,
:func:`aggregate_values`) and the row-at-a-time wrapper
(:func:`evaluate_aggregate`). The vectorized GROUP BY path in
``eval/kernels.py`` evaluates the argument expression once per table and
feeds per-group column slices straight into the core, so both evaluation
modes share one implementation of the aggregate semantics — including the
DISTINCT normalization (``TRUE`` and ``1`` stay distinct, ``1`` and
``1.0`` collapse) and single-type extrema over any totally ordered
literal type (numbers, strings, booleans, ``Date``).
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Iterable, List, Optional

from ..errors import EvaluationError
from ..model.values import as_scalar, distinct_key, is_scalar
from .binding import Binding

__all__ = [
    "AGGREGATE_NAMES",
    "aggregate_values",
    "collect_values",
    "evaluate_aggregate",
    "is_aggregate_name",
]

AGGREGATE_NAMES = frozenset({"count", "sum", "min", "max", "avg", "collect"})


def is_aggregate_name(name: str) -> bool:
    """True for the aggregation function names of Appendix A.1."""
    return name.lower() in AGGREGATE_NAMES


def _numeric(values: List[Any], function: str) -> List[float]:
    numbers: List[float] = []
    for value in values:
        scalar = as_scalar(value)
        if isinstance(scalar, bool) or not isinstance(scalar, (int, float)):
            raise EvaluationError(
                f"{function.upper()} over non-numeric value: {scalar!r}"
            )
        numbers.append(scalar)
    return numbers


def collect_values(raw: Iterable[Any], distinct: bool = False) -> List[Any]:
    """Normalize raw argument values into the list an aggregate ranges over.

    ``None`` and empty value sets (absent properties) are skipped,
    mirroring SQL's treatment of NULLs; singleton sets unwrap to their
    scalar. With ``distinct``, values deduplicate through
    :func:`~repro.model.values.distinct_key` — the same normalization
    ``=``/``IN`` use — so ``COUNT(DISTINCT x)`` over ``{1, TRUE}`` is 2.
    """
    values: List[Any] = []
    for value in raw:
        if value is None:
            continue
        if isinstance(value, frozenset):
            if not value:
                continue
            value = as_scalar(value)
        values.append(value)
    if distinct:
        seen = set()
        unique: List[Any] = []
        for value in values:
            key = distinct_key(value)
            if key not in seen:
                seen.add(key)
                unique.append(value)
        values = unique
    return values


def aggregate_values(name: str, values: List[Any]) -> Any:
    """Apply aggregate *name* to an already-collected value list.

    This is the shared core of the interpreted and vectorized paths;
    *values* must come from :func:`collect_values` (absent values dropped,
    DISTINCT already applied).
    """
    if name == "count":
        return len(values)
    if name == "collect":
        return tuple(values)
    if not values:
        # MIN/MAX/SUM/AVG over an empty group: absent value (empty set).
        return frozenset()
    if name == "sum":
        return sum(_numeric(values, name))
    if name == "avg":
        numbers = _numeric(values, name)
        return sum(numbers) / len(numbers)
    if name == "min":
        return _extremum(values, minimum=True)
    if name == "max":
        return _extremum(values, minimum=False)
    raise EvaluationError(f"unknown aggregate: {name}")


def evaluate_aggregate(
    name: str,
    rows: Iterable[Binding],
    evaluate_argument: Optional[Callable[[Binding], Any]],
    star: bool = False,
    distinct: bool = False,
    maximal_domain: Optional[FrozenSet[str]] = None,
) -> Any:
    """Evaluate aggregate *name* over *rows*.

    ``evaluate_argument`` maps a binding to the argument value (None for
    ``COUNT(*)``). Empty/absent argument values (empty value sets) are
    skipped, mirroring SQL's treatment of NULLs. ``maximal_domain`` feeds
    the COUNT(*) maximality rule described in the module docstring.
    """
    name = name.lower()
    if name not in AGGREGATE_NAMES:
        raise EvaluationError(f"unknown aggregate: {name}")

    if name == "count" and star:
        if maximal_domain is None:
            return sum(1 for _ in rows)
        return sum(1 for row in rows if maximal_domain <= row.domain)

    if evaluate_argument is None:
        raise EvaluationError(f"{name.upper()} requires an argument")

    values = collect_values(
        (evaluate_argument(row) for row in rows), distinct=distinct
    )
    return aggregate_values(name, values)


def _extremum(values: List[Any], minimum: bool) -> Any:
    """MIN/MAX over a group of scalars of one totally ordered type.

    Any mix of non-boolean numbers compares (``1 < 1.5 < 2``); otherwise
    every value must share one exact type whose instances order —
    strings, booleans, and :class:`~repro.model.values.Date` all qualify.
    Mixed-type groups (booleans among numbers included, per the
    ``normalize_scalar`` policy) and unordered values raise.
    """
    scalars = [as_scalar(v) for v in values]
    numbers = [
        s
        for s in scalars
        if isinstance(s, (int, float)) and not isinstance(s, bool)
    ]
    if len(numbers) == len(scalars):
        return min(numbers) if minimum else max(numbers)
    first_type = type(scalars[0])
    if any(type(s) is not first_type for s in scalars):
        raise EvaluationError("MIN/MAX over mixed-type values")
    if not is_scalar(scalars[0]):
        # Multi-valued sets and list values have no total order.
        raise EvaluationError("MIN/MAX over non-scalar values")
    try:
        return min(scalars) if minimum else max(scalars)
    except TypeError:
        raise EvaluationError(
            f"MIN/MAX over unordered values of type {first_type.__name__}"
        ) from None
