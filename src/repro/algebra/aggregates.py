"""Aggregation functions — COUNT, SUM, MIN, MAX, AVG, COLLECT.

Appendix A.1 lists the aggregation functions inherited from relational
query languages plus COLLECT. They are evaluated over a *group* of
bindings (an equivalence class produced by grouping, or a whole table).

One deliberate semantic choice (documented in DESIGN.md): ``COUNT(*)``
counts only *maximal* bindings — those whose domain covers every variable
of the enclosing match block. This makes the paper's Figure-5 view produce
``nr_messages = 0`` for pairs whose OPTIONAL block did not match, exactly
as Section 3 asserts, while remaining the ordinary row count for tables
without partial rows.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Iterable, List, Optional

from ..errors import EvaluationError
from ..model.values import as_scalar
from .binding import Binding

__all__ = ["AGGREGATE_NAMES", "evaluate_aggregate", "is_aggregate_name"]

AGGREGATE_NAMES = frozenset({"count", "sum", "min", "max", "avg", "collect"})


def is_aggregate_name(name: str) -> bool:
    """True for the aggregation function names of Appendix A.1."""
    return name.lower() in AGGREGATE_NAMES


def _numeric(values: List[Any], function: str) -> List[float]:
    numbers: List[float] = []
    for value in values:
        scalar = as_scalar(value)
        if isinstance(scalar, bool) or not isinstance(scalar, (int, float)):
            raise EvaluationError(
                f"{function.upper()} over non-numeric value: {scalar!r}"
            )
        numbers.append(scalar)
    return numbers


def evaluate_aggregate(
    name: str,
    rows: Iterable[Binding],
    evaluate_argument: Optional[Callable[[Binding], Any]],
    star: bool = False,
    distinct: bool = False,
    maximal_domain: Optional[FrozenSet[str]] = None,
) -> Any:
    """Evaluate aggregate *name* over *rows*.

    ``evaluate_argument`` maps a binding to the argument value (None for
    ``COUNT(*)``). Empty/absent argument values (empty value sets) are
    skipped, mirroring SQL's treatment of NULLs. ``maximal_domain`` feeds
    the COUNT(*) maximality rule described in the module docstring.
    """
    name = name.lower()
    if name not in AGGREGATE_NAMES:
        raise EvaluationError(f"unknown aggregate: {name}")

    if name == "count" and star:
        if maximal_domain is None:
            return sum(1 for _ in rows)
        return sum(1 for row in rows if maximal_domain <= row.domain)

    if evaluate_argument is None:
        raise EvaluationError(f"{name.upper()} requires an argument")

    values: List[Any] = []
    for row in rows:
        value = evaluate_argument(row)
        if value is None:
            continue
        if isinstance(value, frozenset):
            if not value:
                continue
            value = as_scalar(value)
        values.append(value)
    if distinct:
        seen = set()
        unique: List[Any] = []
        for value in values:
            key = value if isinstance(value, (int, float, str, bool, frozenset)) else repr(value)
            if key not in seen:
                seen.add(key)
                unique.append(value)
        values = unique

    if name == "count":
        return len(values)
    if name == "collect":
        return tuple(values)
    if not values:
        # MIN/MAX/SUM/AVG over an empty group: absent value (empty set).
        return frozenset()
    if name == "sum":
        return sum(_numeric(values, name))
    if name == "avg":
        numbers = _numeric(values, name)
        return sum(numbers) / len(numbers)
    if name == "min":
        return _extremum(values, minimum=True)
    if name == "max":
        return _extremum(values, minimum=False)
    raise EvaluationError(f"unknown aggregate: {name}")


def _extremum(values: List[Any], minimum: bool) -> Any:
    scalars = [as_scalar(v) for v in values]
    numbers = [s for s in scalars if isinstance(s, (int, float)) and not isinstance(s, bool)]
    if len(numbers) == len(scalars):
        return min(numbers) if minimum else max(numbers)
    strings = [s for s in scalars if isinstance(s, str)]
    if len(strings) == len(scalars):
        return min(strings) if minimum else max(strings)
    raise EvaluationError("MIN/MAX over mixed-type values")
