"""The *simple-path* baseline G-CORE deliberately avoids.

Appendix A.1: "checking if there is a simple path in an extended property
graph whose label satisfies a fixed regular expression is an NP-complete
problem [Mendelzon & Wood 1995]". G-CORE therefore adopts arbitrary-walk
semantics. To reproduce the paper's tractability argument empirically we
also implement the rejected alternative: exhaustive enumeration of simple
(node-disjoint) conforming paths. The complexity benchmarks contrast its
exponential blow-up with the polynomial product-graph search.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set, Tuple

from ..model.graph import ObjectId, PathPropertyGraph
from .automaton import NFA
from .product import PathFinder
from .walk import Walk

__all__ = ["enumerate_simple_paths", "simple_path_exists", "count_simple_paths"]


def enumerate_simple_paths(
    graph: PathPropertyGraph,
    nfa: NFA,
    source: ObjectId,
    target: Optional[ObjectId] = None,
    limit: Optional[int] = None,
) -> Iterator[Walk]:
    """Enumerate conforming *simple* paths (no repeated node) by DFS.

    Worst-case exponential in the graph size — this is the point. The
    optional *limit* bounds the number of yielded walks.
    """
    if source not in graph.nodes:
        return
    finder = PathFinder(graph, nfa)
    produced = 0

    def dfs(
        node: ObjectId,
        state: int,
        sequence: Tuple[ObjectId, ...],
        visited: Set[ObjectId],
    ) -> Iterator[Walk]:
        nonlocal produced
        if nfa.is_accepting(state) and (target is None or node == target):
            produced += 1
            yield Walk(sequence, float(len(sequence) // 2))
        if limit is not None and produced >= limit:
            return
        for _, extension, next_node, next_state in finder._expand(node, state):
            if extension and next_node in visited:
                continue
            next_visited = visited | {next_node} if extension else visited
            yield from dfs(
                next_node, next_state, sequence + extension, next_visited
            )
            if limit is not None and produced >= limit:
                return

    yield from dfs(source, nfa.start, (source,), {source})


def simple_path_exists(
    graph: PathPropertyGraph,
    nfa: NFA,
    source: ObjectId,
    target: ObjectId,
) -> bool:
    """Does a conforming simple path source -> target exist? (NP-hard.)"""
    for _ in enumerate_simple_paths(graph, nfa, source, target, limit=1):
        return True
    return False


def count_simple_paths(
    graph: PathPropertyGraph,
    nfa: NFA,
    source: ObjectId,
    target: Optional[ObjectId] = None,
    limit: Optional[int] = None,
) -> int:
    """Count conforming simple paths (bounded by *limit* if given)."""
    return sum(1 for _ in enumerate_simple_paths(graph, nfa, source, target, limit))
