"""Product-graph path search: the Dijkstra half of Appendix A.1.

Evaluating a path pattern means searching the product of the data graph
with the regular expression's NFA. Two engines share one
:class:`PathFinder` facade:

* the **batched engine** (default) keeps the frontier as *parent-pointer
  entries*: a heap entry carries only ``(cost, key, node, state, id)``
  and back-links into flat ``parents``/``extensions`` arrays, so walks
  are reconstructed lazily — only for entries that actually survive into
  results — instead of copying a growing sequence tuple on every heap
  push. Expansion runs over per-state *programs* compiled against the
  graph's label-bucketed adjacency indexes and is memoized per
  ``(node, state)``, so all sources of a batch
  (:meth:`PathFinder.shortest_multi`) share one search structure. When
  every automaton arc costs 0 or 1 (no PATH-view arcs,
  :attr:`NFA.unit_cost`) the search automatically drops from Dijkstra to
  a level-synchronous BFS that preserves the exact lexicographic
  tie-break by ranking each level's entries;

* the **row-at-a-time engine** (the ``paths="naive"`` axis of
  :class:`~repro.config.ExecutionConfig`) is the original
  tuple-in-the-heap implementation, kept verbatim as the reference
  oracle the batched engine is property-tested against.

Public searches (identical results under either engine):

* :meth:`PathFinder.shortest_from` — single-source cheapest conforming
  walks to every reachable target (ties broken by the fixed
  lexicographic order on identifier sequences, per Appendix A
  footnote 4),
* :meth:`PathFinder.shortest_multi` — the batched multi-source entry
  point: one shared search structure across all distinct sources of a
  binding column,
* :meth:`PathFinder.k_shortest` — the ``k SHORTEST`` semantics of
  Section 3 (k cheapest *distinct* conforming walks; exact even when
  duplicate graph walks arise from distinct automaton runs),
* :meth:`PathFinder.reachable_from` — the reachability-test semantics of
  bare ``-/<r>/->`` patterns (BFS, no cost bookkeeping),
* :meth:`PathFinder.all_paths_projection` — the tractable ALL-paths
  graph projection (reachable ∩ co-reachable product states, method [10]).

Edge arcs cost 1 (hop count — the paper's default path cost), node-test
arcs cost 0, and view arcs carry the PATH-clause cost of their segment
(validated > 0 at materialization, so Dijkstra's invariants hold).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import chain
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..model.graph import ObjectId, PathPropertyGraph
from .automaton import NFA
from .walk import Walk, walk_key

__all__ = ["ViewSegment", "PathFinder", "partition_sources"]


def partition_sources(
    sources: Sequence[ObjectId], parts: int
) -> List[Sequence[ObjectId]]:
    """Split a source batch into at most *parts* contiguous sub-batches.

    The multi-source entry points (:meth:`PathFinder.shortest_multi`,
    :meth:`PathFinder.reachable_multi`) are *partition-invariant*: each
    distinct source runs one independent deterministic search, and the
    shared ``(node, state)`` move memo is a cache, never a result
    dependency — so running the sub-batches on separate finders (even in
    separate worker processes, :mod:`repro.eval.parallel`) and merging
    the per-source dictionaries yields bit-identical walks to one
    finder over the whole batch. Order within each sub-batch is
    preserved; callers merge in sub-batch order (the per-source keys are
    disjoint because callers deduplicate sources first).
    """
    total = len(sources)
    if total == 0 or parts <= 1:
        return [sources] if total else []
    parts = min(parts, total)
    base, extra = divmod(total, parts)
    out: List[Sequence[ObjectId]] = []
    start = 0
    for index in range(parts):
        stop = start + base + (1 if index < extra else 0)
        out.append(sources[start:stop])
        start = stop
    return out


@dataclass(frozen=True)
class ViewSegment:
    """One materialized segment of a PATH-clause view.

    ``sequence`` is the witness walk (alternating nodes/edges) from the
    segment's source to ``target``; ``cost`` is the evaluated COST
    expression (> 0).
    """

    target: ObjectId
    cost: float
    sequence: Tuple[ObjectId, ...]


ViewIndex = Mapping[str, Mapping[ObjectId, Tuple[ViewSegment, ...]]]

_seq_key = walk_key  # historical private alias

#: Entry sentinel: the root of a parent-pointer chain has no parent.
_NO_PARENT = -1


def _make_walk(sequence: Tuple[ObjectId, ...], cost: float) -> Walk:
    """Build a :class:`Walk` without re-validating the sequence.

    Parent-pointer reconstruction only ever produces well-formed
    alternating sequences, so the dataclass ``__init__``/``__post_init__``
    round-trip is skipped — measurable on searches that materialize
    thousands of surviving walks.
    """
    walk = Walk.__new__(Walk)
    object.__setattr__(walk, "sequence", sequence)
    object.__setattr__(walk, "cost", cost)
    return walk


class PathFinder:
    """Shared product-graph search over one graph/NFA/view combination.

    The ``naive`` flag — set by executors running at
    ``ExecutionConfig(paths="naive")`` — selects the row-at-a-time
    reference engine (the original tuple-copying implementation); the
    default is the batched parent-pointer engine. ``bfs=False`` forces
    the batched engine onto
    the Dijkstra path even for unit-cost automata — used by determinism
    tests to check that both strategies realize the same lexicographic
    tie-break.
    """

    def __init__(
        self,
        graph: PathPropertyGraph,
        nfa: NFA,
        views: Optional[ViewIndex] = None,
        naive: bool = False,
        bfs: Optional[bool] = None,
    ) -> None:
        self._graph = graph
        self._nfa = nfa
        self._views: ViewIndex = views or {}
        self._naive = naive
        self._bfs = nfa.unit_cost if bfs is None else (bfs and nfa.unit_cost)
        # Per-state expansion programs against label-bucketed adjacency,
        # and the (node, state) -> moves memo shared by every search this
        # finder runs (the "one search structure" of shortest_multi).
        self._programs: Optional[List[Tuple[tuple, ...]]] = None
        self._moves_cache: Dict[Tuple[ObjectId, int], tuple] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def strategy(self) -> str:
        """The search strategy this finder uses: ``bfs`` or ``dijkstra``."""
        return "bfs" if (not self._naive and self._bfs) else "dijkstra"

    @property
    def batched(self) -> bool:
        """True for the parent-pointer engine, False for the reference."""
        return not self._naive

    # ------------------------------------------------------------------
    # Expansion — reference generator and memoized batched programs
    # ------------------------------------------------------------------
    def _expand(
        self, node: ObjectId, state: int
    ) -> Iterator[Tuple[float, Tuple[ObjectId, ...], ObjectId, int]]:
        """Yield (cost, sequence-extension, next-node, next-state) moves.

        The sequence extension excludes the current node, so appending it
        to a walk ending at *node* yields a valid alternating sequence.
        This is the row-at-a-time reference expansion; the batched engine
        uses the memoized :meth:`_moves_for`.
        """
        graph = self._graph
        for arc, next_state in self._nfa.moves(state):
            if arc.kind == "edge":
                if not arc.inverse:
                    for edge in graph.out_edges(node):
                        if arc.label is None or graph.has_label(edge, arc.label):
                            target = graph.endpoints(edge)[1]
                            yield 1.0, (edge, target), target, next_state
                else:
                    for edge in graph.in_edges(node):
                        if arc.label is None or graph.has_label(edge, arc.label):
                            source = graph.endpoints(edge)[0]
                            yield 1.0, (edge, source), source, next_state
            elif arc.kind == "node":
                if graph.has_label(node, arc.label):
                    yield 0.0, (), node, next_state
            elif arc.kind == "view":
                segments = self._views.get(arc.label, {}).get(node, ())
                for segment in segments:
                    yield (
                        segment.cost,
                        segment.sequence[1:],
                        segment.target,
                        next_state,
                    )

    def _build_programs(self) -> List[Tuple[tuple, ...]]:
        """Compile each NFA state into ops over bucketed adjacency.

        An ``edge`` op carries the label's adjacency dict directly, so
        expanding a node is one dict probe returning pre-filtered,
        pre-sorted edges — no per-edge label test. Built once per finder;
        the graph's adjacency buckets themselves are cached on the graph.
        """
        graph = self._graph
        programs: List[Tuple[tuple, ...]] = []
        for state in range(self._nfa.state_count):
            ops: List[tuple] = []
            for arc, next_state in self._nfa.moves(state):
                if arc.kind == "edge":
                    adjacency = (
                        graph.in_adjacency(arc.label)
                        if arc.inverse
                        else graph.out_adjacency(arc.label)
                    )
                    endpoint = 0 if arc.inverse else 1
                    ops.append(("edge", adjacency, endpoint, next_state))
                elif arc.kind == "node":
                    ops.append(("node", arc.label, next_state))
                else:
                    segments = self._views.get(arc.label, {})
                    ops.append(("view", segments, next_state))
            programs.append(tuple(ops))
        self._programs = programs
        return programs

    def _moves_for(
        self, node: ObjectId, state: int
    ) -> Tuple[Tuple[float, Tuple[ObjectId, ...], Tuple[str, ...], ObjectId, int], ...]:
        """Memoized product-graph moves from ``(node, state)``.

        Each move is ``(cost, extension, extension-key, node, state)``;
        the lexicographic key part is stringified once here and reused by
        every heap push of every search this finder runs — the searches
        themselves never call ``str``.
        """
        memo_key = (node, state)
        moves = self._moves_cache.get(memo_key)
        if moves is not None:
            return moves
        programs = self._programs
        if programs is None:
            programs = self._build_programs()
        graph = self._graph
        rho = graph.endpoints
        out: List[tuple] = []
        for op in programs[state]:
            kind = op[0]
            if kind == "edge":
                _, adjacency, endpoint, next_state = op
                for edge in adjacency.get(node, ()):
                    other = rho(edge)[endpoint]
                    extension = (edge, other)
                    out.append(
                        (1.0, extension, walk_key(extension), other, next_state)
                    )
            elif kind == "node":
                _, label, next_state = op
                if graph.has_label(node, label):
                    out.append((0.0, (), (), node, next_state))
            else:
                _, segments, next_state = op
                for segment in segments.get(node, ()):
                    extension = segment.sequence[1:]
                    out.append(
                        (
                            segment.cost,
                            extension,
                            walk_key(extension),
                            segment.target,
                            next_state,
                        )
                    )
        moves = tuple(out)
        self._moves_cache[memo_key] = moves
        return moves

    def _moves(self):
        """The expansion function of the active engine."""
        return self._expand if self._naive else self._moves_for

    # ------------------------------------------------------------------
    # Parent-pointer plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _reconstruct(
        entry: int, parents: List[int], extensions: List[tuple]
    ) -> Tuple[ObjectId, ...]:
        """Rebuild a walk sequence by following parent pointers."""
        parts: List[tuple] = []
        while entry != _NO_PARENT:
            parts.append(extensions[entry])
            entry = parents[entry]
        parts.reverse()
        return tuple(chain.from_iterable(parts))

    # ------------------------------------------------------------------
    # Single-source shortest walks
    # ------------------------------------------------------------------
    def shortest_from(
        self,
        source: ObjectId,
        targets: Optional[Set[ObjectId]] = None,
    ) -> Dict[ObjectId, Walk]:
        """Cheapest conforming walk from *source* to each reachable node.

        When *targets* is given, the search stops once every requested
        target has been settled. Ties are broken by the lexicographic
        order of the walk's identifier sequence, making results fully
        deterministic (and identical across the batched and reference
        engines, and across the BFS and Dijkstra strategies).
        """
        if self._naive:
            return self._shortest_from_naive(source, targets)
        if source not in self._graph.nodes:
            return {}
        results, parents, extensions = self._search_shortest(source, targets)
        return {
            node: _make_walk(self._reconstruct(entry, parents, extensions), cost)
            for node, (entry, cost) in results.items()
        }

    def shortest(self, source: ObjectId, target: ObjectId) -> Optional[Walk]:
        """The single cheapest conforming walk from *source* to *target*."""
        return self.shortest_from(source, {target}).get(target)

    def conforming_targets(self, source: ObjectId) -> Tuple[ObjectId, ...]:
        """Nodes admitting a conforming walk from *source*, in settle order.

        Like ``shortest_from(source).keys()`` but without reconstructing
        any walk — the k-shortest evaluator uses it to enumerate target
        candidates lazily.
        """
        if source not in self._graph.nodes:
            return ()
        if self._naive:
            return tuple(self._shortest_from_naive(source, None))
        results, _, _ = self._search_shortest(source, None)
        return tuple(results)

    def shortest_multi(
        self,
        sources: Sequence[ObjectId],
        targets: Optional[object] = None,
    ) -> Dict[ObjectId, Dict[ObjectId, Walk]]:
        """Batched multi-source shortest walks sharing one search structure.

        Runs one single-source search per *distinct* source, all against
        the same memoized product-graph expansion — the batching the
        columnar ``PathAtom`` applies to a grouped binding column.
        *targets* is either None (all reachable targets per source), a
        set applied to every source, or a mapping ``{source: set-or-None}``
        with per-source target sets. When targets are given, results are
        restricted to them and only surviving walks are reconstructed.
        """
        out: Dict[ObjectId, Dict[ObjectId, Walk]] = {}
        per_source = isinstance(targets, Mapping)
        for source in sources:
            if source in out:
                continue
            wanted = targets.get(source) if per_source else targets
            if source not in self._graph.nodes:
                out[source] = {}
                continue
            if self._naive:
                walks = self._shortest_from_naive(
                    source, set(wanted) if wanted is not None else None
                )
                if wanted is not None:
                    walks = {n: w for n, w in walks.items() if n in wanted}
                out[source] = walks
                continue
            results, parents, extensions = self._search_shortest(source, wanted)
            out[source] = {
                node: _make_walk(
                    self._reconstruct(entry, parents, extensions), cost
                )
                for node, (entry, cost) in results.items()
                if wanted is None or node in wanted
            }
        return out

    def _search_shortest(
        self, source: ObjectId, targets: Optional[Iterable[ObjectId]]
    ) -> Tuple[Dict[ObjectId, Tuple[int, float]], List[int], List[tuple]]:
        if self._bfs:
            return self._search_bfs(source, targets)
        return self._search_dijkstra(source, targets)

    def _search_dijkstra(
        self, source: ObjectId, targets: Optional[Iterable[ObjectId]]
    ) -> Tuple[Dict[ObjectId, Tuple[int, float]], List[int], List[tuple]]:
        """Parent-pointer Dijkstra with incremental lexicographic keys.

        Only one entry per ``(node, state)`` can ever be settled, so a
        push is skipped outright when a previously pushed entry for the
        same product state already compares ``<=`` under the heap's
        ``(cost, key)`` order — pruning dead heap traffic without
        affecting which entry settles.
        """
        nfa = self._nfa
        moves_for = self._moves_for
        results: Dict[ObjectId, Tuple[int, float]] = {}
        parents: List[int] = [_NO_PARENT]
        extensions: List[tuple] = [(source,)]
        settled: Set[Tuple[ObjectId, int]] = set()
        best: Dict[Tuple[ObjectId, int], Tuple[float, Tuple[str, ...]]] = {
            (source, nfa.start): (0.0, (str(source),))
        }
        remaining = set(targets) if targets is not None else None
        counter = 0
        heap = [(0.0, (str(source),), 0, source, nfa.start, 0)]
        while heap:
            cost, key, _, node, state, entry = heapq.heappop(heap)
            if (node, state) in settled:
                continue
            settled.add((node, state))
            if nfa.is_accepting(state) and node not in results:
                results[node] = (entry, cost)
                if remaining is not None:
                    remaining.discard(node)
                    if not remaining:
                        return results, parents, extensions
            for delta, extension, ext_key, next_node, next_state in moves_for(
                node, state
            ):
                next_pair = (next_node, next_state)
                if next_pair in settled:
                    continue
                candidate = (cost + delta, key + ext_key)
                known = best.get(next_pair)
                if known is not None and known <= candidate:
                    continue
                best[next_pair] = candidate
                parents.append(entry)
                extensions.append(extension)
                counter += 1
                heapq.heappush(
                    heap,
                    (
                        candidate[0],
                        candidate[1],
                        counter,
                        next_node,
                        next_state,
                        len(parents) - 1,
                    ),
                )
        return results, parents, extensions

    def _search_bfs(
        self, source: ObjectId, targets: Optional[Iterable[ObjectId]]
    ) -> Tuple[Dict[ObjectId, Tuple[int, float]], List[int], List[tuple]]:
        """Level-synchronous unit-cost BFS with rank-based tie-breaking.

        All walks settled at depth ``d`` have sequences of length
        ``2d + 1`` (edge arcs append two identifiers, node-test arcs
        none), so the lexicographic order within a level is exactly the
        order by ``(parent rank, extension key)``: a parent's rank is its
        sequence's rank among the level's distinct sequences, and equal
        ``(rank, extension)`` pairs denote equal sequences and share a
        rank. This realizes Dijkstra's full-key tie-break with O(1)-size
        per-entry keys.
        """
        nfa = self._nfa
        moves_for = self._moves_for
        results: Dict[ObjectId, Tuple[int, float]] = {}
        parents: List[int] = [_NO_PARENT]
        extensions: List[tuple] = [(source,)]
        settled: Set[Tuple[ObjectId, int]] = set()
        remaining = set(targets) if targets is not None else None
        depth = 0
        counter = 0
        # Heap of (rank, counter, node, state, entry); zero-cost node-test
        # arcs re-enter the current level under their parent's rank.
        level = [(0, 0, source, nfa.start, 0)]
        while level:
            frontier: List[tuple] = []
            while level:
                rank, _, node, state, entry = heapq.heappop(level)
                if (node, state) in settled:
                    continue
                settled.add((node, state))
                if nfa.is_accepting(state) and node not in results:
                    results[node] = (entry, float(depth))
                    if remaining is not None:
                        remaining.discard(node)
                        if not remaining:
                            return results, parents, extensions
                for delta, extension, ext_key, next_node, next_state in moves_for(
                    node, state
                ):
                    if (next_node, next_state) in settled:
                        continue
                    if delta == 0.0:
                        # Same sequence, same level, same rank.
                        parents.append(entry)
                        extensions.append(())
                        counter += 1
                        heapq.heappush(
                            level,
                            (rank, counter, next_node, next_state, len(parents) - 1),
                        )
                    else:
                        frontier.append(
                            (rank, ext_key, next_node, next_state, entry, extension)
                        )
            if not frontier:
                break
            frontier.sort(key=lambda item: (item[0], item[1]))
            depth += 1
            counter = 0
            previous = None
            next_rank = -1
            entries: List[tuple] = []
            queued: Set[Tuple[ObjectId, int]] = set()
            for parent_rank, ext_key, node, state, parent, extension in frontier:
                pair = (node, state)
                if pair in settled:
                    continue
                if (parent_rank, ext_key) != previous:
                    next_rank += 1
                    previous = (parent_rank, ext_key)
                # Only the first (lowest-ranked) candidate per product
                # state can ever settle; later ones are dead weight —
                # unless they carry the same sequence, whose zero-cost
                # closure is already covered by the kept entry.
                if pair in queued:
                    continue
                queued.add(pair)
                parents.append(parent)
                extensions.append(extension)
                counter += 1
                entries.append((next_rank, counter, node, state, len(parents) - 1))
            level = entries  # already heap-ordered: ranks are ascending
        return results, parents, extensions

    def _shortest_from_naive(
        self,
        source: ObjectId,
        targets: Optional[Set[ObjectId]] = None,
    ) -> Dict[ObjectId, Walk]:
        """The original tuple-in-the-heap Dijkstra (reference engine)."""
        if source not in self._graph.nodes:
            return {}
        results: Dict[ObjectId, Walk] = {}
        start_sequence = (source,)
        counter = 0
        heap = [
            (0.0, walk_key(start_sequence), counter, source, self._nfa.start, start_sequence)
        ]
        settled: Set[Tuple[ObjectId, int]] = set()
        remaining = set(targets) if targets is not None else None
        while heap:
            cost, _, _, node, state, sequence = heapq.heappop(heap)
            if (node, state) in settled:
                continue
            settled.add((node, state))
            if self._nfa.is_accepting(state) and node not in results:
                results[node] = Walk(sequence, cost)
                if remaining is not None:
                    remaining.discard(node)
                    if not remaining:
                        return results
            for delta, extension, next_node, next_state in self._expand(node, state):
                if (next_node, next_state) in settled:
                    continue
                next_sequence = sequence + extension
                counter += 1
                heapq.heappush(
                    heap,
                    (
                        cost + delta,
                        walk_key(next_sequence),
                        counter,
                        next_node,
                        next_state,
                        next_sequence,
                    ),
                )
        return results

    # ------------------------------------------------------------------
    # k shortest walks
    # ------------------------------------------------------------------
    def k_shortest(
        self, source: ObjectId, target: ObjectId, k: int
    ) -> List[Walk]:
        """The k cheapest *distinct* conforming walks from source to target.

        Under the paper's arbitrary-walk semantics this is the classic
        "count-bounded Dijkstra": each product state may be expanded a
        bounded number of times, enumerating walks in (cost, key) order.
        Distinct automaton runs can project to the *same* graph walk, so
        a fixed pop bound per state can silently starve the enumeration;
        the exact scans below therefore count only *distinct* walk
        prefixes against the per-state bound (k of them always suffice:
        the j-th cheapest walk to any state extends an i-th cheapest walk
        to a predecessor with i <= j) and skip duplicate prefixes outright.

        The reference engine keeps the historical 2k+4 bounded scan as a
        fast path and falls back to the exhaustive duplicate-aware scan
        whenever the bound actually suppressed an expansion.
        """
        if k <= 0 or source not in self._graph.nodes:
            return []
        if target not in self._graph.nodes:
            return []
        if self._naive:
            results, truncated = self._k_shortest_bounded(source, target, k)
            if truncated:
                # The pop bound bit: rerun without trusting it (duplicates
                # no longer count toward the per-state budget).
                return self._k_shortest_exhaustive(source, target, k)
            return results
        return self._k_shortest_batched(source, target, k)

    def _k_shortest_batched(
        self, source: ObjectId, target: ObjectId, k: int
    ) -> List[Walk]:
        """Parent-pointer exact scan: k distinct-prefix pops per state."""
        nfa = self._nfa
        moves_for = self._moves_for
        results: List[Walk] = []
        seen_walks: Set[Tuple[str, ...]] = set()
        popped: Dict[Tuple[ObjectId, int], Set[Tuple[str, ...]]] = {}
        parents: List[int] = [_NO_PARENT]
        extensions: List[tuple] = [(source,)]
        counter = 0
        heap = [(0.0, (str(source),), 0, source, nfa.start, 0)]
        while heap and len(results) < k:
            cost, key, _, node, state, entry = heapq.heappop(heap)
            state_key = (node, state)
            keys = popped.get(state_key)
            if keys is None:
                keys = set()
                popped[state_key] = keys
            if key in keys:
                continue  # duplicate run of an already-expanded walk
            if len(keys) >= k:
                continue  # k distinct walks already expanded here
            keys.add(key)
            if (
                node == target
                and nfa.is_accepting(state)
                and key not in seen_walks
            ):
                seen_walks.add(key)
                results.append(
                    _make_walk(self._reconstruct(entry, parents, extensions), cost)
                )
                if len(results) >= k:
                    break
            for delta, extension, ext_key, next_node, next_state in moves_for(
                node, state
            ):
                next_keys = popped.get((next_node, next_state))
                if next_keys is not None and len(next_keys) >= k:
                    continue
                parents.append(entry)
                extensions.append(extension)
                counter += 1
                heapq.heappush(
                    heap,
                    (
                        cost + delta,
                        key + ext_key,
                        counter,
                        next_node,
                        next_state,
                        len(parents) - 1,
                    ),
                )
        return results

    def _k_shortest_bounded(
        self, source: ObjectId, target: ObjectId, k: int
    ) -> Tuple[List[Walk], bool]:
        """The historical 2k+4 pop-bounded scan; flags any suppression."""
        limit = 2 * k + 4
        pops: Dict[Tuple[ObjectId, int], int] = {}
        results: List[Walk] = []
        seen_walks: Set[Tuple[ObjectId, ...]] = set()
        truncated = False
        counter = 0
        heap = [(0.0, walk_key((source,)), counter, source, self._nfa.start, (source,))]
        while heap and len(results) < k:
            cost, _, _, node, state, sequence = heapq.heappop(heap)
            key = (node, state)
            count = pops.get(key, 0)
            if count >= limit:
                truncated = True
                continue
            pops[key] = count + 1
            if (
                node == target
                and self._nfa.is_accepting(state)
                and sequence not in seen_walks
            ):
                seen_walks.add(sequence)
                results.append(Walk(sequence, cost))
                if len(results) >= k:
                    break
            for delta, extension, next_node, next_state in self._expand(node, state):
                if pops.get((next_node, next_state), 0) >= limit:
                    truncated = True
                    continue
                next_sequence = sequence + extension
                counter += 1
                heapq.heappush(
                    heap,
                    (
                        cost + delta,
                        walk_key(next_sequence),
                        counter,
                        next_node,
                        next_state,
                        next_sequence,
                    ),
                )
        return results, truncated

    def _k_shortest_exhaustive(
        self, source: ObjectId, target: ObjectId, k: int
    ) -> List[Walk]:
        """Row-at-a-time duplicate-aware exact scan (reference fallback).

        Independent of the batched scan: carries whole sequences in the
        heap, but applies the same distinct-prefix accounting — duplicate
        (state, sequence) pops are skipped without touching the budget,
        and each state expands at most its k cheapest distinct prefixes.
        """
        results: List[Walk] = []
        seen_walks: Set[Tuple[ObjectId, ...]] = set()
        popped: Dict[Tuple[ObjectId, int], Set[Tuple[ObjectId, ...]]] = {}
        counter = 0
        heap = [(0.0, walk_key((source,)), counter, source, self._nfa.start, (source,))]
        while heap and len(results) < k:
            cost, _, _, node, state, sequence = heapq.heappop(heap)
            state_key = (node, state)
            sequences = popped.setdefault(state_key, set())
            if sequence in sequences:
                continue
            if len(sequences) >= k:
                continue
            sequences.add(sequence)
            if (
                node == target
                and self._nfa.is_accepting(state)
                and sequence not in seen_walks
            ):
                seen_walks.add(sequence)
                results.append(Walk(sequence, cost))
                if len(results) >= k:
                    break
            for delta, extension, next_node, next_state in self._expand(node, state):
                known = popped.get((next_node, next_state))
                if known is not None and len(known) >= k:
                    continue
                next_sequence = sequence + extension
                counter += 1
                heapq.heappush(
                    heap,
                    (
                        cost + delta,
                        walk_key(next_sequence),
                        counter,
                        next_node,
                        next_state,
                        next_sequence,
                    ),
                )
        return results

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable_from(self, source: ObjectId) -> FrozenSet[ObjectId]:
        """All nodes reachable from *source* via a conforming walk."""
        if source not in self._graph.nodes:
            return frozenset()
        moves = self._moves()
        seen: Set[Tuple[ObjectId, int]] = {(source, self._nfa.start)}
        stack = [(source, self._nfa.start)]
        reachable: Set[ObjectId] = set()
        if self._nfa.is_accepting(self._nfa.start):
            reachable.add(source)
        while stack:
            node, state = stack.pop()
            # Moves are 4-tuples from the reference generator, 5-tuples
            # (with a key part) from the batched memo; unpack from the end.
            for move in moves(node, state):
                pair = (move[-2], move[-1])
                if pair in seen:
                    continue
                seen.add(pair)
                stack.append(pair)
                if self._nfa.is_accepting(pair[1]):
                    reachable.add(pair[0])
        return frozenset(reachable)

    def reachable_multi(
        self, sources: Sequence[ObjectId]
    ) -> Dict[ObjectId, FrozenSet[ObjectId]]:
        """Reachability from every distinct source, sharing the move memo."""
        out: Dict[ObjectId, FrozenSet[ObjectId]] = {}
        for source in sources:
            if source not in out:
                out[source] = self.reachable_from(source)
        return out

    # ------------------------------------------------------------------
    # ALL-paths projection
    # ------------------------------------------------------------------
    def all_paths_projection(
        self, source: ObjectId, target: ObjectId
    ) -> Tuple[FrozenSet[ObjectId], FrozenSet[ObjectId]]:
        """Nodes and edges lying on *some* conforming walk source -> target.

        Computes forward-reachable product states, then walks the recorded
        transition relation backwards from accepting target states; a
        transition survives iff both ends are in the intersection. This is
        the paper's tractable ALL-paths projection ([10]): no walk is ever
        materialized.
        """
        if source not in self._graph.nodes or target not in self._graph.nodes:
            return frozenset(), frozenset()
        moves = self._moves()
        start = (source, self._nfa.start)
        forward: Set[Tuple[ObjectId, int]] = {start}
        # transition list: (from_state, to_state, nodes_used, edges_used)
        transitions: List[
            Tuple[
                Tuple[ObjectId, int],
                Tuple[ObjectId, int],
                Tuple[ObjectId, ...],
                Tuple[ObjectId, ...],
            ]
        ] = []
        stack = [start]
        while stack:
            node, state = stack.pop()
            # 4-tuples (reference) or 5-tuples (batched memo); the
            # extension sits at index 1 either way.
            for move in moves(node, state):
                extension = move[1]
                pair = (move[-2], move[-1])
                nodes_used = tuple(extension[1::2])
                edges_used = tuple(extension[0::2])
                transitions.append(((node, state), pair, nodes_used, edges_used))
                if pair not in forward:
                    forward.add(pair)
                    stack.append(pair)
        accepting = {
            pair
            for pair in forward
            if pair[0] == target and self._nfa.is_accepting(pair[1])
        }
        if not accepting:
            return frozenset(), frozenset()
        # Backward reachability over the recorded transitions.
        incoming: Dict[Tuple[ObjectId, int], List[int]] = {}
        for index, (src_pair, dst_pair, _, _) in enumerate(transitions):
            incoming.setdefault(dst_pair, []).append(index)
        co_reachable: Set[Tuple[ObjectId, int]] = set(accepting)
        stack2 = list(accepting)
        while stack2:
            pair = stack2.pop()
            for index in incoming.get(pair, ()):
                src_pair = transitions[index][0]
                if src_pair not in co_reachable:
                    co_reachable.add(src_pair)
                    stack2.append(src_pair)
        core = forward & co_reachable
        nodes: Set[ObjectId] = set()
        edges: Set[ObjectId] = set()
        if start in core:
            nodes.add(source)
        for src_pair, dst_pair, nodes_used, edges_used in transitions:
            if src_pair in core and dst_pair in core:
                nodes.add(src_pair[0])
                nodes.add(dst_pair[0])
                nodes.update(nodes_used)
                edges.update(edges_used)
        return frozenset(nodes), frozenset(edges)
