"""Product-graph path search: the Dijkstra half of Appendix A.1.

Evaluating a path pattern means searching the product of the data graph
with the regular expression's NFA. All searches share one expansion
routine (:meth:`PathFinder._expand`); on top of it we provide

* :meth:`PathFinder.shortest_from` — single-source cheapest conforming
  walks to every reachable target (Dijkstra; ties broken by the fixed
  lexicographic order on node identifiers, per Appendix A footnote 4),
* :meth:`PathFinder.k_shortest` — the ``k SHORTEST`` semantics of
  Section 3 (k cheapest *distinct* conforming walks, arbitrary-walk
  semantics, so the count-bounded Dijkstra enumeration is exact),
* :meth:`PathFinder.reachable_from` — the reachability-test semantics of
  bare ``-/<r>/->`` patterns (BFS, no cost bookkeeping),
* :meth:`PathFinder.all_paths_projection` — the tractable ALL-paths
  graph projection (reachable ∩ co-reachable product states, method [10]).

Edge arcs cost 1 (hop count — the paper's default path cost), node-test
arcs cost 0, and view arcs carry the PATH-clause cost of their segment
(validated > 0 at materialization, so Dijkstra's invariants hold).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..model.graph import ObjectId, PathPropertyGraph
from .automaton import NFA
from .walk import Walk

__all__ = ["ViewSegment", "PathFinder"]


@dataclass(frozen=True)
class ViewSegment:
    """One materialized segment of a PATH-clause view.

    ``sequence`` is the witness walk (alternating nodes/edges) from the
    segment's source to ``target``; ``cost`` is the evaluated COST
    expression (> 0).
    """

    target: ObjectId
    cost: float
    sequence: Tuple[ObjectId, ...]


ViewIndex = Mapping[str, Mapping[ObjectId, Tuple[ViewSegment, ...]]]


def _seq_key(sequence: Tuple[ObjectId, ...]) -> Tuple[str, ...]:
    """The lexicographic tie-breaking key of a walk."""
    return tuple(str(obj) for obj in sequence)


class PathFinder:
    """Shared product-graph search over one graph/NFA/view combination."""

    def __init__(
        self,
        graph: PathPropertyGraph,
        nfa: NFA,
        views: Optional[ViewIndex] = None,
    ) -> None:
        self._graph = graph
        self._nfa = nfa
        self._views: ViewIndex = views or {}

    # ------------------------------------------------------------------
    def _expand(
        self, node: ObjectId, state: int
    ) -> Iterator[Tuple[float, Tuple[ObjectId, ...], ObjectId, int]]:
        """Yield (cost, sequence-extension, next-node, next-state) moves.

        The sequence extension excludes the current node, so appending it
        to a walk ending at *node* yields a valid alternating sequence.
        """
        graph = self._graph
        for arc, next_state in self._nfa.moves(state):
            if arc.kind == "edge":
                if not arc.inverse:
                    for edge in graph.out_edges(node):
                        if arc.label is None or graph.has_label(edge, arc.label):
                            target = graph.endpoints(edge)[1]
                            yield 1.0, (edge, target), target, next_state
                else:
                    for edge in graph.in_edges(node):
                        if arc.label is None or graph.has_label(edge, arc.label):
                            source = graph.endpoints(edge)[0]
                            yield 1.0, (edge, source), source, next_state
            elif arc.kind == "node":
                if graph.has_label(node, arc.label):
                    yield 0.0, (), node, next_state
            elif arc.kind == "view":
                segments = self._views.get(arc.label, {}).get(node, ())
                for segment in segments:
                    yield (
                        segment.cost,
                        segment.sequence[1:],
                        segment.target,
                        next_state,
                    )

    # ------------------------------------------------------------------
    def shortest_from(
        self,
        source: ObjectId,
        targets: Optional[Set[ObjectId]] = None,
    ) -> Dict[ObjectId, Walk]:
        """Cheapest conforming walk from *source* to each reachable node.

        When *targets* is given, the search stops once every requested
        target has been settled. Ties are broken by the lexicographic
        order of the walk's identifier sequence, making results fully
        deterministic.
        """
        if source not in self._graph.nodes:
            return {}
        results: Dict[ObjectId, Walk] = {}
        start_sequence = (source,)
        counter = 0
        heap = [(0.0, _seq_key(start_sequence), counter, source, self._nfa.start,
                 start_sequence)]
        settled: Set[Tuple[ObjectId, int]] = set()
        remaining = set(targets) if targets is not None else None
        while heap:
            cost, _, _, node, state, sequence = heapq.heappop(heap)
            if (node, state) in settled:
                continue
            settled.add((node, state))
            if self._nfa.is_accepting(state) and node not in results:
                results[node] = Walk(sequence, cost)
                if remaining is not None:
                    remaining.discard(node)
                    if not remaining:
                        return results
            for delta, extension, next_node, next_state in self._expand(node, state):
                if (next_node, next_state) in settled:
                    continue
                next_sequence = sequence + extension
                counter += 1
                heapq.heappush(
                    heap,
                    (
                        cost + delta,
                        _seq_key(next_sequence),
                        counter,
                        next_node,
                        next_state,
                        next_sequence,
                    ),
                )
        return results

    def shortest(self, source: ObjectId, target: ObjectId) -> Optional[Walk]:
        """The single cheapest conforming walk from *source* to *target*."""
        return self.shortest_from(source, {target}).get(target)

    # ------------------------------------------------------------------
    def k_shortest(
        self, source: ObjectId, target: ObjectId, k: int
    ) -> List[Walk]:
        """The k cheapest *distinct* conforming walks from source to target.

        Under the paper's arbitrary-walk semantics this is the classic
        "count-bounded Dijkstra": each product state may be expanded up to
        a bounded number of times, enumerating walks in cost order. A
        small slack over k absorbs duplicate graph walks that arise from
        distinct automaton runs.
        """
        if k <= 0 or source not in self._graph.nodes:
            return []
        if target not in self._graph.nodes:
            return []
        limit = 2 * k + 4
        pops: Dict[Tuple[ObjectId, int], int] = {}
        results: List[Walk] = []
        seen_walks: Set[Tuple[ObjectId, ...]] = set()
        counter = 0
        heap = [(0.0, _seq_key((source,)), counter, source, self._nfa.start,
                 (source,))]
        while heap and len(results) < k:
            cost, _, _, node, state, sequence = heapq.heappop(heap)
            key = (node, state)
            count = pops.get(key, 0)
            if count >= limit:
                continue
            pops[key] = count + 1
            if (
                node == target
                and self._nfa.is_accepting(state)
                and sequence not in seen_walks
            ):
                seen_walks.add(sequence)
                results.append(Walk(sequence, cost))
                if len(results) >= k:
                    break
            for delta, extension, next_node, next_state in self._expand(node, state):
                if pops.get((next_node, next_state), 0) >= limit:
                    continue
                next_sequence = sequence + extension
                counter += 1
                heapq.heappush(
                    heap,
                    (
                        cost + delta,
                        _seq_key(next_sequence),
                        counter,
                        next_node,
                        next_state,
                        next_sequence,
                    ),
                )
        return results

    # ------------------------------------------------------------------
    def reachable_from(self, source: ObjectId) -> FrozenSet[ObjectId]:
        """All nodes reachable from *source* via a conforming walk."""
        if source not in self._graph.nodes:
            return frozenset()
        seen: Set[Tuple[ObjectId, int]] = {(source, self._nfa.start)}
        stack = [(source, self._nfa.start)]
        reachable: Set[ObjectId] = set()
        if self._nfa.is_accepting(self._nfa.start):
            reachable.add(source)
        while stack:
            node, state = stack.pop()
            for _, _, next_node, next_state in self._expand(node, state):
                pair = (next_node, next_state)
                if pair in seen:
                    continue
                seen.add(pair)
                stack.append(pair)
                if self._nfa.is_accepting(next_state):
                    reachable.add(next_node)
        return frozenset(reachable)

    # ------------------------------------------------------------------
    def all_paths_projection(
        self, source: ObjectId, target: ObjectId
    ) -> Tuple[FrozenSet[ObjectId], FrozenSet[ObjectId]]:
        """Nodes and edges lying on *some* conforming walk source -> target.

        Computes forward-reachable product states, then walks the recorded
        transition relation backwards from accepting target states; a
        transition survives iff both ends are in the intersection. This is
        the paper's tractable ALL-paths projection ([10]): no walk is ever
        materialized.
        """
        if source not in self._graph.nodes or target not in self._graph.nodes:
            return frozenset(), frozenset()
        start = (source, self._nfa.start)
        forward: Set[Tuple[ObjectId, int]] = {start}
        # transition list: (from_state, to_state, nodes_used, edges_used)
        transitions: List[
            Tuple[Tuple[ObjectId, int], Tuple[ObjectId, int],
                  Tuple[ObjectId, ...], Tuple[ObjectId, ...]]
        ] = []
        stack = [start]
        while stack:
            node, state = stack.pop()
            for _, extension, next_node, next_state in self._expand(node, state):
                pair = (next_node, next_state)
                nodes_used = tuple(extension[1::2])
                edges_used = tuple(extension[0::2])
                transitions.append(((node, state), pair, nodes_used, edges_used))
                if pair not in forward:
                    forward.add(pair)
                    stack.append(pair)
        accepting = {
            pair
            for pair in forward
            if pair[0] == target and self._nfa.is_accepting(pair[1])
        }
        if not accepting:
            return frozenset(), frozenset()
        # Backward reachability over the recorded transitions.
        incoming: Dict[Tuple[ObjectId, int], List[int]] = {}
        for index, (src_pair, dst_pair, _, _) in enumerate(transitions):
            incoming.setdefault(dst_pair, []).append(index)
        co_reachable: Set[Tuple[ObjectId, int]] = set(accepting)
        stack2 = list(accepting)
        while stack2:
            pair = stack2.pop()
            for index in incoming.get(pair, ()):
                src_pair = transitions[index][0]
                if src_pair not in co_reachable:
                    co_reachable.add(src_pair)
                    stack2.append(src_pair)
        core = forward & co_reachable
        nodes: Set[ObjectId] = set()
        edges: Set[ObjectId] = set()
        if start in core:
            nodes.add(source)
        for src_pair, dst_pair, nodes_used, edges_used in transitions:
            if src_pair in core and dst_pair in core:
                nodes.add(src_pair[0])
                nodes.add(dst_pair[0])
                nodes.update(nodes_used)
                edges.update(edges_used)
        return frozenset(nodes), frozenset(edges)
