"""Path-finding substrate: automata, product-graph search, walk values."""

from .automaton import NFA, Arc, compile_regex, regex_view_names
from .product import PathFinder, ViewSegment
from .simplepaths import (
    count_simple_paths,
    enumerate_simple_paths,
    simple_path_exists,
)
from .walk import AllPathsHandle, Walk

__all__ = [
    "NFA",
    "Arc",
    "compile_regex",
    "regex_view_names",
    "PathFinder",
    "ViewSegment",
    "count_simple_paths",
    "enumerate_simple_paths",
    "simple_path_exists",
    "AllPathsHandle",
    "Walk",
]
