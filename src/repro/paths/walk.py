"""Walk values — computed paths bound to path variables.

A MATCH path pattern ``x -p in r-> y`` binds ``p`` to a *fresh* path (a
walk) computed by the engine (Appendix A.2: "a fresh path identifier
associated to the shortest path L"). :class:`Walk` is that value: the
alternating node/edge sequence plus the cost under which it was found.
Walks are immutable and hashable so they can live inside bindings; the
CONSTRUCT evaluator turns them into stored paths with real identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..model.graph import ObjectId, path_edges, path_nodes

__all__ = ["Walk", "AllPathsHandle", "walk_key"]


def walk_key(sequence: Tuple[ObjectId, ...]) -> Tuple[str, ...]:
    """The lexicographic tie-breaking key of a walk sequence.

    Equal-cost walks are ordered by the string form of their identifier
    sequence (Appendix A footnote 4), making every search in
    :mod:`repro.paths.product` fully deterministic. The batched engine
    builds these keys incrementally (parent key + extension) instead of
    re-stringifying whole sequences per heap push.
    """
    return tuple(str(obj) for obj in sequence)


@dataclass(frozen=True)
class Walk:
    """A concrete walk through a graph with its accumulated cost."""

    sequence: Tuple[ObjectId, ...]
    cost: float = 0.0

    def __post_init__(self) -> None:
        if len(self.sequence) % 2 == 0 or not self.sequence:
            raise ValueError("a walk must alternate nodes and edges")

    @property
    def source(self) -> ObjectId:
        """The first node of the walk."""
        return self.sequence[0]

    @property
    def target(self) -> ObjectId:
        """The last node of the walk."""
        return self.sequence[-1]

    def nodes(self) -> Tuple[ObjectId, ...]:
        """``nodes(p)`` for a computed path."""
        return path_nodes(self.sequence)

    def edges(self) -> Tuple[ObjectId, ...]:
        """``edges(p)`` for a computed path."""
        return path_edges(self.sequence)

    def length(self) -> int:
        """Hop count (number of edges)."""
        return len(self.sequence) // 2

    def concat(self, other: "Walk") -> "Walk":
        """Concatenate two walks sharing an endpoint."""
        if self.target != other.source:
            raise ValueError("walks do not share an endpoint")
        return Walk(self.sequence + other.sequence[1:], self.cost + other.cost)

    def key(self) -> Tuple[str, ...]:
        """This walk's lexicographic tie-breaking key (:func:`walk_key`)."""
        return walk_key(self.sequence)

    def __repr__(self) -> str:
        return f"Walk({list(self.sequence)!r}, cost={self.cost})"


@dataclass(frozen=True)
class AllPathsHandle:
    """The value bound by an ``ALL p <r>`` pattern.

    The paper restricts ALL-path variables to graph projection (Section 3),
    since materializing all walks may be infinite. The handle carries the
    *projection* — every node and edge lying on some conforming walk —
    computed without path enumeration (the tractable method of [10]).
    """

    source: ObjectId
    target: ObjectId
    nodes: Tuple[ObjectId, ...]
    edges: Tuple[ObjectId, ...]

    def __repr__(self) -> str:
        return (
            f"AllPathsHandle({self.source!r}->{self.target!r}, "
            f"{len(self.nodes)} nodes, {len(self.edges)} edges)"
        )
