"""Thompson construction of NFAs for regular path expressions.

Appendix A.1 evaluates path patterns by "standard automata-theoretic
techniques in conjunction with Dijkstra-style algorithms". This module is
the automata half: it compiles a :class:`~repro.lang.ast.RegexExpr` into a
small epsilon-NFA whose arcs are one of

* ``edge``  — traverse a graph edge with a required label (or any label),
  forward or inverse (``l`` vs ``l-``),
* ``node``  — test a label on the *current* node without moving (``!l``),
* ``view``  — traverse one segment of a PATH-clause view (``~name``),
  carrying that segment's cost and witness walk.

Epsilon closures are precomputed so the product-graph search never deals
with epsilon moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..errors import SemanticError
from ..lang import ast

__all__ = [
    "Arc",
    "NFA",
    "compile_regex",
    "regex_view_names",
    "regex_edge_labels",
]


@dataclass(frozen=True)
class Arc:
    """A non-epsilon NFA transition label."""

    kind: str                      # 'edge' | 'node' | 'view'
    label: Optional[str] = None    # edge/node label; view name for 'view'
    inverse: bool = False          # traverse the edge backwards


class NFA:
    """An epsilon-free view over a Thompson NFA.

    After :meth:`_finalize`, ``moves(state)`` lists the non-epsilon arcs
    available from a state (through epsilon closure) and
    ``is_accepting(state)`` answers through the closure as well.
    """

    def __init__(self) -> None:
        self._transitions: List[List[Tuple[Optional[Arc], int]]] = []
        self.start: int = 0
        self.accept: int = 0
        self._closed_moves: List[Tuple[Tuple[Arc, int], ...]] = []
        self._accepting: List[bool] = []
        self._unit_cost: bool = True

    # Construction ------------------------------------------------------
    def new_state(self) -> int:
        self._transitions.append([])
        return len(self._transitions) - 1

    def add_arc(self, source: int, arc: Optional[Arc], target: int) -> None:
        self._transitions[source].append((arc, target))

    def _epsilon_closure(self, state: int) -> FrozenSet[int]:
        seen: Set[int] = {state}
        stack = [state]
        while stack:
            current = stack.pop()
            for arc, target in self._transitions[current]:
                if arc is None and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def _finalize(self) -> "NFA":
        count = len(self._transitions)
        self._closed_moves = []
        self._accepting = []
        for state in range(count):
            closure = self._epsilon_closure(state)
            moves: List[Tuple[Arc, int]] = []
            for member in closure:
                for arc, target in self._transitions[member]:
                    if arc is not None:
                        moves.append((arc, target))
            self._closed_moves.append(tuple(moves))
            self._accepting.append(self.accept in closure)
        self._unit_cost = not any(
            arc.kind == "view" for moves in self._closed_moves for arc, _ in moves
        )
        return self

    # Queries -------------------------------------------------------------
    @property
    def state_count(self) -> int:
        return len(self._transitions)

    def moves(self, state: int) -> Tuple[Tuple[Arc, int], ...]:
        """All non-epsilon arcs reachable from *state* via epsilon closure."""
        return self._closed_moves[state]

    def is_accepting(self, state: int) -> bool:
        """True iff an accept state is in the epsilon closure of *state*."""
        return self._accepting[state]

    @property
    def unit_cost(self) -> bool:
        """True iff every arc costs 0 or 1 (no PATH-view arcs).

        Edge arcs cost 1 and node-test arcs cost 0; only ``view`` arcs
        carry arbitrary positive costs. A unit-cost automaton lets the
        product-graph search run the level-synchronous BFS fast path
        instead of a full Dijkstra (see :mod:`repro.paths.product`).
        """
        return self._unit_cost

    def view_names(self) -> FrozenSet[str]:
        """All PATH-view names referenced by this automaton."""
        names: Set[str] = set()
        for moves in self._closed_moves:
            for arc, _ in moves:
                if arc.kind == "view":
                    names.add(arc.label)
        return frozenset(names)


def compile_regex(regex: Optional[ast.RegexExpr]) -> NFA:
    """Compile *regex* into an epsilon-free NFA (None means any-edge star).

    A missing regex — a bare ``-/p/->`` pattern — is interpreted as ``_*``
    (any walk), the least restrictive conforming expression.
    """
    if regex is None:
        regex = ast.RStar(ast.RAnyEdge())
    nfa = NFA()
    start = nfa.new_state()
    accept = nfa.new_state()
    nfa.start = start
    nfa.accept = accept
    _build(nfa, regex, start, accept)
    return nfa._finalize()


def _build(nfa: NFA, regex: ast.RegexExpr, source: int, target: int) -> None:
    if isinstance(regex, ast.REps):
        nfa.add_arc(source, None, target)
    elif isinstance(regex, ast.RLabel):
        nfa.add_arc(source, Arc("edge", regex.label, regex.inverse), target)
    elif isinstance(regex, ast.RAnyEdge):
        nfa.add_arc(source, Arc("edge", None, regex.inverse), target)
    elif isinstance(regex, ast.RNodeTest):
        nfa.add_arc(source, Arc("node", regex.label), target)
    elif isinstance(regex, ast.RView):
        nfa.add_arc(source, Arc("view", regex.name), target)
    elif isinstance(regex, ast.RConcat):
        current = source
        for index, item in enumerate(regex.items):
            nxt = target if index == len(regex.items) - 1 else nfa.new_state()
            _build(nfa, item, current, nxt)
            current = nxt
    elif isinstance(regex, ast.RAlt):
        for item in regex.items:
            _build(nfa, item, source, target)
    elif isinstance(regex, ast.RStar):
        hub = nfa.new_state()
        nfa.add_arc(source, None, hub)
        nfa.add_arc(hub, None, target)
        _build(nfa, regex.item, hub, hub)
    elif isinstance(regex, ast.RPlus):
        hub = nfa.new_state()
        _build(nfa, regex.item, source, hub)
        _build(nfa, regex.item, hub, hub)
        nfa.add_arc(hub, None, target)
    elif isinstance(regex, ast.ROpt):
        nfa.add_arc(source, None, target)
        _build(nfa, regex.item, source, target)
    elif isinstance(regex, ast.RRepeat):
        # r{m,n}: m mandatory copies, then (n-m) optional ones (or a star
        # when the upper bound is open).
        current = source
        for _ in range(regex.low):
            nxt = nfa.new_state()
            _build(nfa, regex.item, current, nxt)
            current = nxt
        if regex.high is None:
            _build(nfa, ast.RStar(regex.item), current, target)
        else:
            for _ in range(regex.high - regex.low):
                nxt = nfa.new_state()
                nfa.add_arc(current, None, target)
                _build(nfa, regex.item, current, nxt)
                current = nxt
            nfa.add_arc(current, None, target)
    else:
        raise SemanticError(f"unsupported regular path expression: {regex!r}")


def regex_edge_labels(
    regex: Optional[ast.RegexExpr],
) -> Optional[FrozenSet[str]]:
    """The edge labels a conforming walk may traverse, or None if unknown.

    Returns the set of labels appearing in ``edge`` positions of *regex*
    (inverse traversals included). ``None`` means the label set cannot be
    bounded statically — the regex contains an any-edge wildcard or a
    PATH-view reference, or is a bare ``-/p/->`` pattern (any-walk). The
    cost model uses this to bound reachability estimates per label
    (:meth:`repro.model.statistics.GraphStatistics.reachability_estimate`).
    """
    labels: Set[str] = set()
    unknown = False

    def visit(node: Optional[ast.RegexExpr]) -> None:
        nonlocal unknown
        if node is None or unknown:
            unknown = unknown or node is None
            return
        if isinstance(node, ast.RLabel):
            labels.add(node.label)
        elif isinstance(node, (ast.RAnyEdge, ast.RView)):
            unknown = True
        elif isinstance(node, (ast.RConcat, ast.RAlt)):
            for item in node.items:
                visit(item)
        elif isinstance(node, (ast.RStar, ast.RPlus, ast.ROpt, ast.RRepeat)):
            visit(node.item)

    visit(regex)
    if unknown:
        return None
    return frozenset(labels)


def regex_view_names(regex: Optional[ast.RegexExpr]) -> FrozenSet[str]:
    """Statically collect the ``~view`` names referenced by *regex*."""
    names: Set[str] = set()

    def visit(node: Optional[ast.RegexExpr]) -> None:
        if node is None:
            return
        if isinstance(node, ast.RView):
            names.add(node.name)
        elif isinstance(node, (ast.RConcat, ast.RAlt)):
            for item in node.items:
                visit(item)
        elif isinstance(node, (ast.RStar, ast.RPlus, ast.ROpt, ast.RRepeat)):
            visit(node.item)

    visit(regex)
    return frozenset(names)
