"""Static analysis of queries: variable sorts and well-formedness.

The formal model (Appendix A.1) partitions variables into node, edge,
path and value sorts. We infer each variable's sort from the syntactic
positions it occupies and reject sort clashes ("it would be illegal to
use n (a node) in the place of y (an edge)" — Section 3). Additional
checks implement the paper's explicit restrictions:

* an ``ALL``-paths variable may only be used for graph projection
  (Section 3);
* variables shared between OPTIONAL blocks must occur in the enclosing
  pattern, so that evaluation order does not matter (Section 3, citing
  the SPARQL OPTIONAL analysis of Pérez et al.).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from ..errors import SemanticError
from ..lang import ast
from .expressions import expr_variables

__all__ = [
    "VariableSorts",
    "analyze_match",
    "chain_variables",
    "check_optional_restriction",
]

VariableSorts = Dict[str, str]  # name -> 'node' | 'edge' | 'path' | 'value'


def _assign(sorts: VariableSorts, name: Optional[str], sort: str) -> None:
    if not name:
        return
    existing = sorts.get(name)
    if existing is not None and existing != sort:
        raise SemanticError(
            f"variable {name!r} used both as {existing} and as {sort}"
        )
    sorts[name] = sort


def _collect_chain(sorts: VariableSorts, chain: ast.Chain) -> None:
    for element in chain.elements:
        if isinstance(element, ast.NodePattern):
            _assign(sorts, element.var, "node")
            for _, bind_var in element.prop_binds:
                _assign(sorts, bind_var, "value")
        elif isinstance(element, ast.EdgePattern):
            _assign(sorts, element.var, "edge")
            for _, bind_var in element.prop_binds:
                _assign(sorts, bind_var, "value")
        elif isinstance(element, ast.PathPatternElem):
            _assign(sorts, element.var, "path")
            _assign(sorts, element.cost_var, "value")


def chain_variables(chain: ast.Chain) -> FrozenSet[str]:
    """All variables declared by a pattern chain."""
    sorts: VariableSorts = {}
    _collect_chain(sorts, chain)
    return frozenset(sorts)


def analyze_match(match: Optional[ast.MatchClause]) -> VariableSorts:
    """Infer the sorts of all variables declared by a MATCH clause.

    Raises :class:`~repro.errors.SemanticError` on sort clashes and on
    violations of the ALL-paths and OPTIONAL restrictions.
    """
    sorts: VariableSorts = {}
    if match is None:
        return sorts
    blocks: List[ast.MatchBlock] = [match.block, *match.optionals]
    all_vars_by_mode: Dict[str, str] = {}
    for block in blocks:
        for location in block.patterns:
            _collect_chain(sorts, location.chain)
            for element in location.chain.elements:
                if (
                    isinstance(element, ast.PathPatternElem)
                    and element.var
                    and element.mode == "all"
                ):
                    all_vars_by_mode[element.var] = "all"
    # ALL-paths variables must not be referenced in WHERE conditions.
    for block in blocks:
        if block.where is not None:
            used = expr_variables(block.where)
            for name in used:
                if all_vars_by_mode.get(name) == "all":
                    raise SemanticError(
                        f"ALL-paths variable {name!r} may only be used for "
                        f"graph projection"
                    )
    check_optional_restriction(match)
    return sorts


def check_optional_restriction(match: ast.MatchClause) -> None:
    """Variables shared by OPTIONAL blocks must occur in the main pattern.

    This is the syntactic restriction of Section 3 that makes the
    semantics independent of the evaluation order of OPTIONAL blocks.
    """
    main_vars: Set[str] = set()
    for location in match.block.patterns:
        main_vars |= chain_variables(location.chain)
    optional_vars: List[FrozenSet[str]] = []
    for block in match.optionals:
        block_vars: Set[str] = set()
        for location in block.patterns:
            block_vars |= chain_variables(location.chain)
        optional_vars.append(frozenset(block_vars))
    for i in range(len(optional_vars)):
        for j in range(i + 1, len(optional_vars)):
            shared = optional_vars[i] & optional_vars[j]
            rogue = shared - main_vars
            if rogue:
                raise SemanticError(
                    "variables shared by OPTIONAL blocks must appear in the "
                    f"enclosing pattern: {sorted(rogue)}"
                )


def construct_variables(construct: ast.ConstructClause) -> VariableSorts:
    """Sorts of the construct variables of a CONSTRUCT clause."""
    sorts: VariableSorts = {}
    for item in construct.items:
        if isinstance(item, ast.GraphRefItem):
            continue
        _collect_chain(sorts, item.chain)
    return sorts
