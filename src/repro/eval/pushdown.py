"""WHERE predicate pushdown for the columnar MATCH pipeline.

The formal semantics applies a block's WHERE condition to the joined
binding table *after* every pattern atom has run (Appendix A.2). Because
the condition is a conjunction of truthy-coerced conjuncts, any conjunct
can be applied as soon as all of its variables are bound — and a
conjunct over a *single* variable can filter candidate objects inside
``extend_columnar``'s hash-join probe, before rows materialize at all
(the same trick PR 2's const/dynamic property-test split plays for
pattern ``{k=v}`` tests).

Pushing is only sound when it cannot change observable behaviour, so a
conjunct qualifies only when it is *total* (provably never raises: no
arithmetic, no raising builtins, no missing parameters) **and** every
conjunct to its left is total too — otherwise early filtering could
suppress an error the oracle's left-to-right short-circuit evaluation
would have reached. Conjuncts that do not qualify (or whose variables
are never bound by this block's atoms) stay in the *residual* and are
applied at block end in their original order.

:class:`PushdownPlan` performs the conjunct analysis once per block
evaluation; the match evaluator consumes assignments as atoms execute,
the planner reads :meth:`pushed_property_keys` to sharpen cardinality
estimates, and EXPLAIN replays the same assignment logic dry via
:meth:`simulate`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..algebra.aggregates import is_aggregate_name
from ..algebra.binding import Binding
from ..lang import ast
from .expressions import ExpressionEvaluator, expr_variables

__all__ = ["PushdownPlan", "atom_label", "split_conjuncts"]

_MISS = object()

#: Builtins that cannot raise when applied to arbitrary values (their
#: error cases coerce to the absent value instead). Everything else —
#: ``nodes``/``edges``/``length``/``cost`` and unknown names — raises on
#: the wrong input and keeps its conjunct on the residual path.
_TOTAL_UNARY_BUILTINS = frozenset(
    {"size", "labels", "id", "tostring", "tointeger", "tofloat", "abs"}
)


def split_conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    """Flatten a WHERE condition into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def _is_total(expr: Optional[ast.Expr], params: Dict[str, Any]) -> bool:
    """Can evaluating *expr* ever raise? (Conservative syntactic check.)"""
    if expr is None:
        return True
    if isinstance(expr, (ast.Literal, ast.Var, ast.LabelTest)):
        return True
    if isinstance(expr, ast.Param):
        return expr.name in params
    if isinstance(expr, ast.Prop):
        return _is_total(expr.base, params)
    if isinstance(expr, ast.Unary):
        return expr.op == "not" and _is_total(expr.operand, params)
    if isinstance(expr, ast.Binary):
        if expr.op in (
            "and", "or", "xor",
            "=", "<>", "<", "<=", ">", ">=",
            "in", "subset",
        ):
            return _is_total(expr.left, params) and _is_total(expr.right, params)
        return False  # arithmetic raises on non-numbers / zero divisors
    if isinstance(expr, ast.CaseExpr):
        return all(
            _is_total(cond, params) and _is_total(value, params)
            for cond, value in expr.whens
        ) and _is_total(expr.default, params)
    if isinstance(expr, ast.ListLiteral):
        return all(_is_total(item, params) for item in expr.items)
    if isinstance(expr, ast.Index):
        # Raises unless the index is a literal non-bool integer.
        return (
            _is_total(expr.base, params)
            and isinstance(expr.index, ast.Literal)
            and isinstance(expr.index.value, int)
            and not isinstance(expr.index.value, bool)
        )
    if isinstance(expr, ast.FuncCall):
        if expr.star or is_aggregate_name(expr.name):
            return False
        name = expr.name.lower()
        if name == "coalesce":
            return all(_is_total(arg, params) for arg in expr.args)
        if name in _TOTAL_UNARY_BUILTINS and len(expr.args) == 1:
            return _is_total(expr.args[0], params)
        return False
    return False  # EXISTS subqueries/patterns: evaluate where the oracle does


class _Conjunct:
    """One pushable WHERE conjunct with its assignment state."""

    __slots__ = ("expr", "variables", "index", "consumed")

    def __init__(self, expr: ast.Expr, variables: FrozenSet[str], index: int) -> None:
        self.expr = expr
        self.variables = variables
        self.index = index
        self.consumed = False


def atom_label(atom) -> str:
    """A short human-readable tag for EXPLAIN's pushdown lines."""
    kind = atom.kind
    if kind == "node":
        return f"node({atom.var})"
    if kind == "edge":
        edge = atom.var or "_"
        return f"edge({edge}:{atom.src_var}->{atom.dst_var})"
    return f"path({atom.src_var}->{atom.dst_var})"


def _probe_supported(atom, var: str) -> bool:
    """Can *atom* filter candidates for *var* at its probe?"""
    kind = getattr(atom, "kind", None)
    if kind == "node":
        return var == atom.var
    if kind == "edge":
        return var in (atom.src_var, atom.dst_var) or (
            atom.var is not None and var == atom.var
        )
    return False


class PushdownPlan:
    """The pushdown assignment of one block's WHERE condition."""

    def __init__(self, where: Optional[ast.Expr], params: Dict[str, Any]):
        self.pushable: List[_Conjunct] = []
        self._residual: List[Tuple[int, ast.Expr]] = []
        blocked = False
        for index, conjunct in enumerate(split_conjuncts(where)):
            if blocked or not _is_total(conjunct, params):
                # Everything from the first non-total conjunct on stays
                # in source order: pushing a later conjunct could hide
                # an error this one raises under short-circuiting.
                blocked = True
                self._residual.append((index, conjunct))
            else:
                self.pushable.append(
                    _Conjunct(conjunct, expr_variables(conjunct), index)
                )

    # ------------------------------------------------------------------
    def pushed_property_keys(self) -> Dict[str, Tuple[str, ...]]:
        """Property keys each variable's pushed conjuncts test.

        Feeds the planner's cardinality estimates: a pushed
        ``x.key = const``-style conjunct shrinks the atom binding ``x``
        just like a pattern property test would.
        """
        keys: Dict[str, List[str]] = {}

        def visit(node, var: str) -> None:
            if isinstance(node, ast.Prop):
                if isinstance(node.base, ast.Var):
                    keys.setdefault(var, []).append(node.key)
                visit(node.base, var)
            elif isinstance(node, ast.Unary):
                visit(node.operand, var)
            elif isinstance(node, ast.Binary):
                visit(node.left, var)
                visit(node.right, var)
            elif isinstance(node, ast.FuncCall):
                for arg in node.args:
                    visit(arg, var)
            elif isinstance(node, ast.CaseExpr):
                for cond, value in node.whens:
                    visit(cond, var)
                    visit(value, var)
                visit(node.default, var)
            elif isinstance(node, ast.Index):
                visit(node.base, var)
            elif isinstance(node, ast.ListLiteral):
                for item in node.items:
                    visit(item, var)

        for conjunct in self.pushable:
            if len(conjunct.variables) != 1:
                continue
            (var,) = tuple(conjunct.variables)
            visit(conjunct.expr, var)
        return {var: tuple(found) for var, found in keys.items()}

    # ------------------------------------------------------------------
    def take_probe(self, atom, bound_before) -> List[_Conjunct]:
        """Single-variable conjuncts *atom* can filter at its probe.

        Only variables the atom newly binds qualify — a variable bound
        by an earlier atom was already consumed as a post-filter there.
        Marks the returned conjuncts consumed.
        """
        taken: List[_Conjunct] = []
        for conjunct in self.pushable:
            if conjunct.consumed or len(conjunct.variables) != 1:
                continue
            (var,) = tuple(conjunct.variables)
            if var in bound_before:
                continue
            if _probe_supported(atom, var):
                conjunct.consumed = True
                taken.append(conjunct)
        return taken

    def take_post(self, bound) -> List[_Conjunct]:
        """Conjuncts whose variables are now all bound (marks consumed)."""
        taken: List[_Conjunct] = []
        for conjunct in self.pushable:
            if not conjunct.consumed and conjunct.variables <= bound:
                conjunct.consumed = True
                taken.append(conjunct)
        return taken

    def remaining(self) -> List[ast.Expr]:
        """Unconsumed conjuncts + residual, in source order."""
        leftovers = [(c.index, c.expr) for c in self.pushable if not c.consumed]
        return [expr for _, expr in sorted(leftovers + self._residual)]

    # ------------------------------------------------------------------
    def probe_predicates(
        self, conjuncts: List[_Conjunct], ev: ExpressionEvaluator
    ) -> Dict[str, Callable[[Any], bool]]:
        """Per-variable candidate predicates for a probe assignment.

        Each predicate evaluates its conjuncts over a one-variable
        binding through the reference evaluator (full Section 3
        semantics, context lookups included) and memoizes per object —
        the predicate runs once per distinct candidate, not per row.
        """
        grouped: Dict[str, List[ast.Expr]] = {}
        for conjunct in conjuncts:
            (var,) = tuple(conjunct.variables)
            grouped.setdefault(var, []).append(conjunct.expr)
        predicates: Dict[str, Callable[[Any], bool]] = {}
        for var, exprs in grouped.items():

            def predicate(obj, var=var, exprs=exprs, memo={}):  # noqa: B006
                verdict = memo.get(obj, _MISS)
                if verdict is _MISS:
                    row = Binding({var: obj})
                    verdict = all(ev.evaluate_predicate(expr, row) for expr in exprs)
                    memo[obj] = verdict
                return verdict

            predicates[var] = predicate
        return predicates

    # ------------------------------------------------------------------
    def simulate(self, ordered_atoms, bound) -> List[str]:
        """Dry-run the assignment over *ordered_atoms* (EXPLAIN support).

        Consumes conjuncts exactly like real evaluation (call on a fresh
        plan) and mutates *bound* so multi-pattern blocks accumulate.
        """
        from ..lang.pretty import pretty_expr

        lines: List[str] = []
        for atom in ordered_atoms:
            for conjunct in self.take_probe(atom, bound):
                lines.append(
                    f"pushed {pretty_expr(conjunct.expr)} -> "
                    f"{atom_label(atom)} [probe]"
                )
            bound |= atom.binds()
            for conjunct in self.take_post(bound):
                lines.append(
                    f"pushed {pretty_expr(conjunct.expr)} -> "
                    f"{atom_label(atom)} [filter]"
                )
        return lines
