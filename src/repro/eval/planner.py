"""A cost-based atom-ordering planner for MATCH evaluation.

The formal semantics joins every pattern's binding set; the order of
evaluation only affects performance. When graph statistics are available
(:meth:`PathPropertyGraph.statistics`), the planner runs a cardinality
estimator: each atom gets an estimated output-rows-per-input-row factor
given the currently bound variables, and the greedy loop always picks the
atom that keeps the intermediate binding table smallest. Without
statistics it falls back to the original hand-tuned heuristic
(:func:`atom_score`), which encodes the same intuitions with constants:

* atoms over already-bound variables run first (they only filter),
* selective atoms (labels, property tests) run before unconstrained ones,
* edges run once an endpoint is bound (index lookups instead of scans),
* path atoms run once their source endpoint is bound (one single-source
  product-graph search per distinct source).

Selection uses a lazy-reevaluation heap instead of repeated ``max()``
over a shrinking list: priorities only change when the bound-variable set
grows, so stale entries are re-scored and re-pushed at most once per
selection. ``naive=True`` disables reordering entirely (pure syntax
order); the ablation benchmark EXP-B1 measures the difference.

:func:`plan_atoms` returns the full trace — the score/estimate each atom
actually had at selection time — which EXPLAIN renders; :class:`PlanCache`
memoizes orderings per (pattern site, bound columns, graph) for the
engine's prepared queries.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from typing import Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

from ..paths.automaton import regex_edge_labels

__all__ = [
    "atom_score",
    "estimate_cardinality",
    "order_atoms",
    "plan_atoms",
    "explain_order",
    "PlanStep",
    "PlanCache",
]


# ---------------------------------------------------------------------------
# Heuristic scores (statistics-free fallback; also the EXP-B1 baseline)
# ---------------------------------------------------------------------------

def atom_score(atom, bound: Set[str]) -> int:
    """The greedy priority of *atom* given already-bound variables."""
    kind = atom.kind
    if kind == "node":
        pattern = atom.pattern
        if atom.var in bound:
            return 100
        selective = bool(pattern.labels) + bool(pattern.prop_tests)
        if selective:
            return 55 + 5 * selective
        return 5
    if kind == "edge":
        pattern = atom.pattern
        if atom.var and atom.var in bound:
            return 95
        endpoints_bound = (atom.src_var in bound) + (atom.dst_var in bound)
        if endpoints_bound == 2:
            return 90
        if endpoints_bound == 1:
            return 70
        if pattern.labels or pattern.prop_tests:
            return 40
        return 15
    if kind == "path":
        if atom.pattern.stored:
            if atom.pattern.var and atom.pattern.var in bound:
                return 85
            if atom.from_var in bound:
                return 65
            return 30
        if atom.from_var in bound:
            return 50
        return 2
    return 0


# ---------------------------------------------------------------------------
# Cardinality estimation (statistics-driven cost model)
# ---------------------------------------------------------------------------

def _node_estimate(atom, bound: Set[str], stats, pushed=None) -> float:
    pattern = atom.pattern
    selectivity = stats.label_selectivity("node", pattern.labels)
    selectivity *= stats.property_tests_selectivity(
        "node", (key for key, _ in pattern.prop_tests)
    )
    if pushed:
        # WHERE conjuncts pushed into this atom filter its candidates
        # exactly like pattern property tests do.
        selectivity *= stats.property_tests_selectivity(
            "node", pushed.get(atom.var, ())
        )
    if atom.var in bound:
        return min(selectivity, 1.0)
    return stats.node_count * selectivity


def _edge_estimate(atom, bound: Set[str], stats, pushed=None) -> float:
    pattern = atom.pattern
    matching = stats.edge_count * stats.label_selectivity("edge", pattern.labels)
    matching *= stats.property_tests_selectivity(
        "edge", (key for key, _ in pattern.prop_tests)
    )
    if pushed and atom.var:
        matching *= stats.property_tests_selectivity(
            "edge", pushed.get(atom.var, ())
        )
    nodes = max(stats.node_count, 1)
    undirected = 2.0 if pattern.direction == "undirected" else 1.0
    if atom.var and atom.var in bound:
        # The edge object itself is fixed: a pure filter.
        return min(matching / max(stats.edge_count, 1), 1.0)
    endpoints_bound = (atom.src_var in bound) + (atom.dst_var in bound)
    if endpoints_bound == 2:
        # Expected parallel edges between two specific endpoints.
        return undirected * matching / (nodes * nodes)
    if endpoints_bound == 1:
        # Expected fan from a uniformly chosen bound endpoint.
        return undirected * matching / nodes
    return undirected * matching


def _path_estimate(atom, bound: Set[str], stats) -> float:
    pattern = atom.pattern
    nodes = max(stats.node_count, 1)
    if pattern.stored:
        matching = stats.path_count * stats.label_selectivity(
            "path", pattern.labels
        )
        if pattern.var and pattern.var in bound:
            return min(matching / max(stats.path_count, 1), 1.0)
        if atom.from_var in bound:
            matching /= nodes
        if atom.to_var in bound:
            matching /= nodes
        return matching
    # Computed path: bound the reachable-target fan by the statically
    # known edge labels of the regex (None = unbounded wildcard/view).
    fanout = stats.reachability_estimate(regex_edge_labels(pattern.regex))
    if pattern.mode not in ("reach", "all"):
        fanout *= max(pattern.count, 1)
    if atom.from_var in bound:
        if atom.to_var in bound:
            return 1.0
        return fanout
    # Unbound source: one product-graph search per node — schedule last.
    return nodes * fanout


def estimate_cardinality(
    atom, bound: Iterable[str], stats, pushed_props=None
) -> float:
    """Estimated output rows per input row for *atom* under *bound*.

    Values below 1.0 mean the atom is expected to shrink the binding
    table (a filter); values above 1.0 mean expansion. The estimate is
    relative — the greedy planner only compares atoms against each other
    at the same step — but on simple scans it equals the true output
    cardinality (tested against the paper's instances).
    ``pushed_props`` maps a variable to the property keys of WHERE
    conjuncts pushed down into the atom binding it (see
    :mod:`repro.eval.pushdown`), sharpening the estimate with the same
    per-key selectivities pattern property tests use.
    """
    bound_set = set(bound)
    kind = atom.kind
    if kind == "node":
        return _node_estimate(atom, bound_set, stats, pushed_props)
    if kind == "edge":
        return _edge_estimate(atom, bound_set, stats, pushed_props)
    if kind == "path":
        return _path_estimate(atom, bound_set, stats)
    return float(stats.node_count)


# ---------------------------------------------------------------------------
# Greedy ordering
# ---------------------------------------------------------------------------

class PlanStep(NamedTuple):
    """One planning decision: the atom and its selection-time priority."""

    atom: object
    score: int
    estimate: Optional[float]


def plan_atoms(
    atoms: Sequence[object],
    bound: Iterable[str],
    naive: bool = False,
    stats=None,
    pushed_props=None,
) -> List[PlanStep]:
    """Order *atoms* and record the priority each had when selected.

    With *stats* the priority is the estimated cardinality (lower runs
    first); without, the heuristic :func:`atom_score` (higher runs
    first). Ties break on syntax order. The returned steps carry the
    selection-time score/estimate so EXPLAIN reports what the planner
    actually compared, not a post-hoc recomputation.
    """
    bound_set: Set[str] = set(bound)

    def priority(atom) -> Tuple[float, int]:
        score = atom_score(atom, bound_set)
        if stats is None:
            return (-score, 0)
        # Estimate first, heuristic score as a tie-breaker between atoms
        # with identical estimates (e.g. two unlabeled scans).
        return (
            estimate_cardinality(atom, bound_set, stats, pushed_props),
            -score,
        )

    if naive:
        steps = []
        for atom in atoms:
            estimate = (
                estimate_cardinality(atom, bound_set, stats, pushed_props)
                if stats is not None
                else None
            )
            steps.append(PlanStep(atom, atom_score(atom, bound_set), estimate))
            bound_set |= atom.binds()
        return steps

    heap: List[Tuple[Tuple[float, int], int]] = [
        (priority(atom), index) for index, atom in enumerate(atoms)
    ]
    heapq.heapify(heap)
    steps: List[PlanStep] = []
    while heap:
        stale_priority, index = heapq.heappop(heap)
        atom = atoms[index]
        current = priority(atom)
        if current != stale_priority:
            # Bound variables grew since this entry was pushed; re-score.
            heapq.heappush(heap, (current, index))
            continue
        estimate = current[0] if stats is not None else None
        steps.append(PlanStep(atom, atom_score(atom, bound_set), estimate))
        bound_set |= atom.binds()
    return steps


def order_atoms(
    atoms: Sequence[object],
    bound: Iterable[str],
    naive: bool = False,
    stats=None,
    pushed_props=None,
) -> List[object]:
    """Order *atoms* for evaluation, starting from *bound* variables."""
    if naive:
        return list(atoms)
    return [
        step.atom
        for step in plan_atoms(
            atoms, bound, stats=stats, pushed_props=pushed_props
        )
    ]


def explain_order(
    atoms: Sequence[object],
    bound: Iterable[str],
    stats=None,
    naive: bool = False,
    pushed_props=None,
) -> str:
    """A human-readable trace of the chosen order (EXPLAIN support).

    Each line reports the score (and, with statistics, the estimated
    output cardinality) the atom had at the moment the planner selected
    it — taken from the recorded :class:`PlanStep`, so the numbers match
    the actual planning decisions.
    """
    executor = "naive" if naive else "batched"
    lines: List[str] = []
    for step in plan_atoms(
        atoms, bound, naive=naive, stats=stats, pushed_props=pushed_props
    ):
        detail = f"score={step.score:<3}"
        if step.estimate is not None:
            detail += f" est~{_format_estimate(step.estimate):<8}"
        line = f"  {step.atom.kind:<5} {detail} binds={sorted(step.atom.binds())}"
        strategy = getattr(step.atom, "explain_strategy", None)
        if strategy is not None:
            # Path atoms report their search strategy (bfs vs dijkstra)
            # and which executor will run them (batched vs naive).
            line += f" strategy={strategy()},{executor}"
        lines.append(line)
    return "\n".join(lines)


def _format_estimate(estimate: float) -> str:
    if estimate >= 100 or estimate == int(estimate):
        return f"{estimate:.0f}"
    return f"{estimate:.2f}"


# ---------------------------------------------------------------------------
# Plan memoization (prepared queries)
# ---------------------------------------------------------------------------

class PlanCache:
    """An LRU memo of atom orderings, keyed by pattern site and graph.

    A :class:`~repro.engine.PreparedQuery` owns one of these; the match
    evaluator consults it before planning so repeated executions of the
    same statement skip ordering work entirely. Entries pin the pattern
    location and graph objects and are validated by identity — a graph
    re-registered under the same name is a different object and simply
    misses, so stale orderings can never be replayed.

    Thread-safe: the query server executes one prepared statement from
    many snapshot readers concurrently while ``apply_update`` purges
    superseded-graph entries, so every structural operation on the LRU
    (lookup's move-to-end included) runs under a lock. Keying by graph
    *object* doubles as per-epoch cache keying — readers pinned to
    different catalog versions never share (or clobber) an ordering.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._mutex = threading.Lock()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def lookup(self, site, columns: Tuple[str, ...], graph) -> Optional[List[int]]:
        """The memoized ordering (as atom indices), or None."""
        key = (id(site), columns, id(graph))
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            entry_site, entry_graph, order = entry
            if entry_site is not site or entry_graph is not graph:
                # id() reuse after garbage collection; drop the stale entry.
                del self._entries[key]
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return order

    def store(
        self, site, columns: Tuple[str, ...], graph, order: List[int]
    ) -> None:
        key = (id(site), columns, id(graph))
        with self._mutex:
            self._entries[key] = (site, graph, list(order))
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def purge_graph(self, graph) -> int:
        """Drop every ordering memoized against *graph* (by identity).

        Called when a graph delta replaces a catalog entry: the prepared
        queries themselves stay hot (parse and AST survive — names
        re-resolve to the new graph at execution), only the orderings
        planned against the superseded graph object are evicted. A
        snapshot reader still pinned to *graph* simply re-plans on its
        next execution (a cache miss, never an error) and re-stores the
        ordering under the same identity key. Returns the number of
        dropped entries.
        """
        with self._mutex:
            doomed = [
                key
                for key, (_, entry_graph, _) in self._entries.items()
                if entry_graph is graph
            ]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()
