"""A greedy atom-ordering planner for MATCH evaluation.

The formal semantics joins every pattern's binding set; the order of
evaluation only affects performance. This planner implements the standard
"expand from what is bound" heuristic:

* atoms over already-bound variables run first (they only filter),
* selective atoms (labels, property tests) run before unconstrained ones,
* edges run once an endpoint is bound (index lookups instead of scans),
* path atoms run once their source endpoint is bound (one single-source
  product-graph search per distinct source).

``naive=True`` disables the reordering (pure syntax order); the ablation
benchmark EXP-B1 measures the difference.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

__all__ = ["order_atoms", "atom_score", "explain_order"]


def atom_score(atom, bound: Set[str]) -> int:
    """The greedy priority of *atom* given already-bound variables."""
    kind = atom.kind
    if kind == "node":
        pattern = atom.pattern
        if atom.var in bound:
            return 100
        selective = bool(pattern.labels) + bool(pattern.prop_tests)
        if selective:
            return 55 + 5 * selective
        return 5
    if kind == "edge":
        pattern = atom.pattern
        if atom.var and atom.var in bound:
            return 95
        endpoints_bound = (atom.src_var in bound) + (atom.dst_var in bound)
        if endpoints_bound == 2:
            return 90
        if endpoints_bound == 1:
            return 70
        if pattern.labels or pattern.prop_tests:
            return 40
        return 15
    if kind == "path":
        if atom.pattern.stored:
            if atom.pattern.var and atom.pattern.var in bound:
                return 85
            if atom.from_var in bound:
                return 65
            return 30
        if atom.from_var in bound:
            return 50
        return 2
    return 0


def order_atoms(atoms: Sequence[object], bound: Iterable[str],
                naive: bool = False) -> List[object]:
    """Order *atoms* for evaluation, starting from *bound* variables."""
    if naive:
        return list(atoms)
    bound_set: Set[str] = set(bound)
    remaining = list(atoms)
    ordered: List[object] = []
    while remaining:
        best = max(remaining, key=lambda atom: atom_score(atom, bound_set))
        remaining.remove(best)
        ordered.append(best)
        bound_set |= best.binds()
    return ordered


def explain_order(atoms: Sequence[object], bound: Iterable[str]) -> str:
    """A human-readable trace of the chosen order (EXPLAIN support)."""
    bound_set: Set[str] = set(bound)
    lines: List[str] = []
    for atom in order_atoms(atoms, bound_set):
        score = atom_score(atom, bound_set)
        described = getattr(atom, "var", None) or getattr(atom, "pattern", None)
        lines.append(f"  {atom.kind:<5} score={score:<3} binds={sorted(atom.binds())}")
        bound_set |= atom.binds()
        del described
    return "\n".join(lines)
