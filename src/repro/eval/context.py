"""Evaluation context: scoping, identifier generation, object lookup.

A query evaluation owns one :class:`EvalContext`. It layers query-local
state (GRAPH/PATH head clauses, the graphs touched by the current MATCH)
over the engine :class:`~repro.catalog.Catalog`, provides the skolem
``new(x, group)`` function of Appendix A.3 via :class:`IdFactory`, and
answers "which graph does this object live in?" questions for label and
property lookups — necessary because one MATCH may bind objects from
several graphs (multi-graph queries, Section 3).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..catalog import Catalog
from ..config import DEFAULT_CONFIG, ExecutionConfig
from ..errors import EvaluationError, UnknownGraphError
from ..model.graph import ObjectId, PathPropertyGraph
from ..model.values import ValueSet
from ..paths.product import ViewSegment

__all__ = ["IdFactory", "EvalContext"]

_MAX_DEPTH = 64


class IdFactory:
    """Deterministic fresh identifiers and the skolem ``new`` function.

    ``new(site, key)`` returns the same identifier for the same construct
    site and grouping key within one query evaluation, and a fresh one
    otherwise — exactly the behaviour Appendix A.3 requires of ``new``.

    Thread-safe: the engine shares one factory across every query it
    runs, and the query server executes snapshot readers on a thread
    pool. ``fresh`` draws from an atomic counter, and ``skolem``
    publishes memo entries with a single ``setdefault`` so two threads
    racing on the same (site, key) agree on one identifier — a
    check-then-set here could tear a CONSTRUCT result across ids.
    """

    def __init__(self, prefix: str = "_") -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)
        self._memo: Dict[Tuple[Any, ...], str] = {}

    def fresh(self, kind: str = "n") -> str:
        """An identifier never returned before by this factory."""
        return f"{self._prefix}{kind}{next(self._counter)}"

    def skolem(self, kind: str, site: Any, key: Any) -> str:
        """The memoized identifier for (construct site, group key)."""
        memo_key = (kind, site, key)
        existing = self._memo.get(memo_key)
        if existing is not None:
            return existing
        return self._memo.setdefault(memo_key, self.fresh(kind))


class EvalContext:
    """Per-query evaluation state."""

    def __init__(
        self,
        catalog: Catalog,  # or a read-only CatalogSnapshot (same read API)
        id_factory: Optional[IdFactory] = None,
        depth: int = 0,
        config: Optional[ExecutionConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.ids = id_factory or IdFactory()
        self.depth = depth
        # The engine-mode lattice point this evaluation runs at. One
        # frozen value replaces the old Optional[bool] tri-state flag
        # sprawl; the legacy flag names below remain as properties that
        # rewrite the config (each carries its historical cascade).
        self.config: ExecutionConfig = config or DEFAULT_CONFIG
        # Values for $name query parameters (engine.run(..., params=...)).
        self.params: Dict[str, Any] = {}
        # Query-local graph bindings (GRAPH name AS (...)) and path views.
        self.local_graphs: Dict[str, PathPropertyGraph] = {}
        self.local_path_views: Dict[str, Any] = {}  # name -> ast.PathClause
        # Graphs touched by the current match; drives object lookup.
        self.active_graphs: List[PathPropertyGraph] = []
        # The graph of the current block's first pattern (used by ON-less
        # patterns and WHERE pattern predicates).
        self.current_graph: Optional[PathPropertyGraph] = None
        # Memoized atom orderings, installed by PreparedQuery executions
        # (see repro.eval.planner.PlanCache); None = plan every block.
        self.plan_cache = None
        # When a list, the top-level BasicQuery appends its MATCH binding
        # table here before the head clause consumes it. View
        # registration uses this to capture the Omega that seeds the
        # incremental-maintenance support counts (repro.eval.maintenance)
        # without evaluating the MATCH twice. Deliberately NOT inherited
        # by child contexts: subquery tables are not the view's Omega.
        self.omega_sink = None
        # Overlay for objects under construction (WHEN conditions can read
        # the properties of elements the CONSTRUCT is creating).
        self.overlay_labels: Dict[ObjectId, FrozenSet[str]] = {}
        self.overlay_props: Dict[ObjectId, Dict[str, ValueSet]] = {}
        # Materialized PATH-view segments, keyed by (view name, graph id).
        self._segment_cache: Dict[
            Tuple[str, int], Mapping[ObjectId, Tuple[ViewSegment, ...]]
        ] = {}

    # ------------------------------------------------------------------
    def child(self) -> "EvalContext":
        """A nested context for subqueries (shares catalog, ids, locals)."""
        if self.depth + 1 > _MAX_DEPTH:
            raise EvaluationError("query nesting too deep")
        child = EvalContext(
            self.catalog, self.ids, self.depth + 1, config=self.config
        )
        child.params = self.params
        child.local_graphs = dict(self.local_graphs)
        child.local_path_views = dict(self.local_path_views)
        child.active_graphs = list(self.active_graphs)
        child.current_graph = self.current_graph
        child.plan_cache = self.plan_cache
        child.overlay_labels = self.overlay_labels
        child.overlay_props = self.overlay_props
        child._segment_cache = self._segment_cache
        return child

    def use_vectorized(self) -> bool:
        """Whether expressions evaluate through compiled columnar kernels."""
        return self.config.expressions == "vectorized"

    # ------------------------------------------------------------------
    # Legacy mode flags — properties over ``self.config``.
    #
    # Before ExecutionConfig these were independent attributes whose
    # *unset* states derived lazily from one another (vectorized
    # expressions followed the executor, the executor followed the
    # planner mode). The setters below apply the same derivations
    # eagerly, so flag-twiddling call sites (ablation benchmarks, the
    # oracle property suites) keep their exact historical semantics:
    # a later explicit assignment always overrides an earlier cascade.
    # ------------------------------------------------------------------
    @property
    def naive_planner(self) -> bool:
        """True when atoms evaluate in syntax order (the full oracle)."""
        return self.config.planner == "naive"

    @naive_planner.setter
    def naive_planner(self, value: bool) -> None:
        if value:
            # naive=True historically selected the whole reference
            # column: syntax order, row-at-a-time executor, interpreted
            # expressions, per-row path search.
            self.config = self.config.with_(
                planner="naive",
                executor="reference",
                expressions="interpreted",
                paths="naive",
            )
        elif self.config.planner == "naive":
            self.config = self.config.with_(
                planner="cost",
                executor="columnar",
                expressions="vectorized",
                paths="batched",
            )

    @property
    def use_cost_planner(self) -> bool:
        """True when atom ordering uses graph statistics."""
        return self.config.planner == "cost"

    @use_cost_planner.setter
    def use_cost_planner(self, value: bool) -> None:
        if self.config.planner == "naive":
            return  # naive overrides the cost/greedy choice (historical)
        self.config = self.config.with_(
            planner="cost" if value else "greedy"
        )

    @property
    def columnar_executor(self) -> bool:
        """True when MATCH runs the columnar pipeline."""
        return self.config.executor == "columnar"

    @columnar_executor.setter
    def columnar_executor(self, value: bool) -> None:
        if value:
            # Expressions and the path engine rode with the executor
            # when not explicitly pinned (see the cascade note above).
            self.config = self.config.with_(
                executor="columnar", expressions="vectorized",
                paths="batched",
            )
        else:
            self.config = self.config.with_(
                executor="reference", expressions="interpreted",
                paths="naive",
            )

    @property
    def vectorized_expressions(self) -> bool:
        """True when expressions compile to columnar kernels."""
        return self.config.expressions == "vectorized"

    @vectorized_expressions.setter
    def vectorized_expressions(self, value: bool) -> None:
        self.config = self.config.with_(
            expressions="vectorized" if value else "interpreted"
        )

    # ------------------------------------------------------------------
    def resolve_graph(self, name: str) -> PathPropertyGraph:
        """Resolve a graph name: query-locals shadow the catalog."""
        if name in self.local_graphs:
            return self.local_graphs[name]
        return self.catalog.graph(name)

    def default_graph(self) -> PathPropertyGraph:
        graph = self.catalog.default_graph()
        if graph is None:
            raise UnknownGraphError("<default>")
        return graph

    def resolve_path_view(self, name: str):
        """Resolve a PATH view definition (query-local, then catalog)."""
        if name in self.local_path_views:
            return self.local_path_views[name]
        return self.catalog.path_view(name)

    # ------------------------------------------------------------------
    def touch_graph(self, graph: PathPropertyGraph) -> None:
        """Record that the current evaluation reads *graph*."""
        for existing in self.active_graphs:
            if existing is graph:
                return
        self.active_graphs.append(graph)

    def _lookup_chain(self):
        yield from self.active_graphs
        default = self.catalog.default_graph()
        if default is not None:
            yield default

    def graph_of(self, obj: ObjectId) -> Optional[PathPropertyGraph]:
        """The first active graph containing *obj* (None if nowhere)."""
        for graph in self._lookup_chain():
            if obj in graph:
                return graph
        return None

    def lookup_labels(self, obj: ObjectId) -> FrozenSet[str]:
        """Labels of *obj*, consulting the construct overlay first."""
        labels = self.overlay_labels.get(obj)
        if labels is not None:
            return labels
        graph = self.graph_of(obj)
        if graph is None:
            return frozenset()
        return graph.labels(obj)

    def lookup_property(self, obj: ObjectId, key: str) -> ValueSet:
        """sigma(obj, key), consulting the construct overlay first."""
        props = self.overlay_props.get(obj)
        if props is not None:
            return props.get(key, frozenset())
        graph = self.graph_of(obj)
        if graph is None:
            return frozenset()
        return graph.property(obj, key)

    def lookup_properties(self, obj: ObjectId) -> Dict[str, ValueSet]:
        props = self.overlay_props.get(obj)
        if props is not None:
            return dict(props)
        graph = self.graph_of(obj)
        if graph is None:
            return {}
        return graph.properties(obj)

    # ------------------------------------------------------------------
    def require_path_view(self, name: str):
        """Resolve path view *name* or raise :class:`UnknownPathViewError`.

        Match evaluation calls this eagerly for every view a block's
        regexes mention: whether the path atom itself ever runs depends
        on the data and the planner's atom order (an empty binding table
        short-circuits the rest of the block), but name-resolution
        errors must not — the static analyzer reports GC105 for every
        lattice point, so execution has to raise for every lattice
        point too.
        """
        clause = self.resolve_path_view(name)
        if clause is None:
            from ..errors import UnknownPathViewError

            known = list(self.local_path_views)
            names_of = getattr(self.catalog, "path_view_names", None)
            if callable(names_of):
                known.extend(names_of())
            raise UnknownPathViewError(name, candidates=known)
        return clause

    def segments_for(
        self, name: str, graph: PathPropertyGraph
    ) -> Mapping[ObjectId, Tuple[ViewSegment, ...]]:
        """Materialized segments of path view *name* over *graph* (cached)."""
        key = (name, id(graph))
        if key not in self._segment_cache:
            from .pathviews import materialize_path_view  # local import: cycle

            clause = self.require_path_view(name)
            self._segment_cache[key] = materialize_path_view(clause, graph, self)
        return self._segment_cache[key]
