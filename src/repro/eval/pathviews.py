"""PATH clause views — Appendix A.4.

A ``PATH name = <walk pattern>[, <graph patterns>] [WHERE c] [COST f]``
clause defines a *binary view*: a set of (source, target) segments, each
with a witness walk and a strictly positive cost. Regular path
expressions reference the view as ``~name``; the product-graph search
then traverses whole segments at once, which is what makes weighted
shortest paths over complex patterns Dijkstra-evaluable (Section 3,
"Powerful Path Patterns").

Materialization evaluates the clause's patterns as an ordinary match
block over the target graph: the first chain is the *walk pattern* whose
first/last nodes delimit the segment and whose matched elements form the
witness walk; the remaining chains (the non-linear part, footnote 3) are
join constraints that may bind variables used by the COST expression.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Mapping, Tuple

from ..errors import CostError, SemanticError
from ..lang import ast
from ..model.graph import ObjectId, PathPropertyGraph
from ..model.values import as_scalar
from ..paths.product import ViewSegment
from ..paths.walk import Walk, walk_key
from .context import EvalContext
from .expressions import ExpressionEvaluator

__all__ = ["materialize_path_view"]


def _name_walk_chain(chain: ast.Chain, prefix: str) -> ast.Chain:
    """Give every anonymous element of the walk chain an internal name."""
    elements: List[object] = []
    counter = 0
    for element in chain.elements:
        var = getattr(element, "var", None)
        if var is None:
            elements.append(replace(element, var=f"{prefix}{counter}"))
            counter += 1
        else:
            elements.append(element)
    return ast.Chain(tuple(elements))


def materialize_path_view(
    clause: ast.PathClause,
    graph: PathPropertyGraph,
    ctx: EvalContext,
) -> Mapping[ObjectId, Tuple[ViewSegment, ...]]:
    """Evaluate *clause* over *graph* into a source-indexed segment table."""
    from .match import evaluate_block  # local import: cycle

    if not clause.chains:
        raise SemanticError(f"PATH {clause.name} has no pattern")
    walk_chain = _name_walk_chain(clause.chains[0], f"#pv_{clause.name}_")
    if len(walk_chain.elements) < 3:
        raise SemanticError(
            f"PATH {clause.name}: the walk pattern needs at least one edge"
        )
    patterns = [ast.PatternLocation(walk_chain, None)]
    patterns.extend(
        ast.PatternLocation(chain, None) for chain in clause.chains[1:]
    )
    block = ast.MatchBlock(tuple(patterns), clause.where)

    sub_ctx = ctx.child()
    sub_ctx.current_graph = graph
    # The block above is rebuilt per materialization; don't churn the
    # prepared-query plan cache with throwaway pattern sites.
    sub_ctx.plan_cache = None
    table = evaluate_block(
        block, sub_ctx, keep_anonymous=True, name_anonymous_edges=True
    )

    ev = ExpressionEvaluator(sub_ctx)
    best: Dict[Tuple[ObjectId, ...], float] = {}
    for row in table:
        sequence = _witness_sequence(walk_chain, row, graph)
        if clause.cost is not None:
            cost = as_scalar(ev.evaluate(clause.cost, row))
            if isinstance(cost, bool) or not isinstance(cost, (int, float)):
                raise CostError(
                    f"PATH {clause.name}: COST must be numeric, got {cost!r}"
                )
            cost = float(cost)
        else:
            cost = float(len(sequence) // 2)  # default: hop count
        if cost <= 0:
            raise CostError(
                f"PATH {clause.name}: COST must be > 0, got {cost}"
            )
        existing = best.get(sequence)
        if existing is None or cost < existing:
            best[sequence] = cost

    by_source: Dict[ObjectId, List[ViewSegment]] = {}
    for sequence, cost in best.items():
        by_source.setdefault(sequence[0], []).append(
            ViewSegment(target=sequence[-1], cost=cost, sequence=sequence)
        )
    # Segments are sorted by (cost, lexicographic key) so view arcs are
    # expanded in the same deterministic order the product search uses
    # for its own tie-breaking.
    return {
        source: tuple(
            sorted(segments, key=lambda s: (s.cost, walk_key(s.sequence)))
        )
        for source, segments in by_source.items()
    }


def _witness_sequence(
    chain: ast.Chain, row, graph: PathPropertyGraph
) -> Tuple[ObjectId, ...]:
    """Reassemble the witness walk from the bound chain elements."""
    elements = chain.elements
    sequence: List[ObjectId] = [row[elements[0].var]]
    for index in range(1, len(elements), 2):
        connector = elements[index]
        node_var = elements[index + 1].var
        if isinstance(connector, ast.EdgePattern):
            sequence.append(row[connector.var])
            sequence.append(row[node_var])
        elif isinstance(connector, ast.PathPatternElem):
            value = row[connector.var]
            if isinstance(value, Walk):
                sequence.extend(value.sequence[1:])
            else:
                sequence.extend(graph.path_sequence(value)[1:])
        else:  # pragma: no cover
            raise SemanticError("malformed walk pattern")
    return tuple(sequence)
