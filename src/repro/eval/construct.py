"""CONSTRUCT evaluation — Appendix A.3.

Given the binding set Omega produced by MATCH, each construct pattern is
evaluated in phases:

1. **Node constructs** group Omega by their grouping set Γ (``{x}`` for a
   bound variable, the explicit ``GROUP`` expressions, the copy source
   for ``(=n)``, or — for an unbound variable without GROUP — all match
   variables, one element per binding, per footnote 2). Bound variables
   keep their identity, labels and properties; unbound ones receive
   deterministic skolem identifiers ``new(x, Γ-key)``.
2. The bindings are extended with the constructed node identities
   (Omega_N of the formal semantics), so that
3. **edge constructs** connect *constructed* endpoints: since skolem ids
   are injective in the Γ-key, grouping edges by (source-id, target-id,
   bound-edge-id, explicit GROUP) realizes Γz ⊇ Γx ∪ Γy ∪ {x,y} exactly.
4. **Path constructs** store computed walks (``@p``) as new stored paths
   with their constituent nodes/edges, or project a walk / ALL-paths
   handle into plain nodes and edges.
5. ``{k := expr}``, ``SET`` and ``REMOVE`` assignments are applied per
   group — aggregates (e.g. ``COUNT(*)``) range over the group's rows.
6. A ``WHEN`` condition filters per binding, with the freshly constructed
   elements visible through the context overlay (so ``WHEN e.score > 0``
   can read the score just assigned to the new edge).

The result of the CONSTRUCT clause is the union of all items' graphs
(graph names in the item list union the named graphs in — the shorthand
of Section 3).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..algebra.binding import ABSENT, Binding, BindingTable
from ..algebra.grouping import MISSING
from ..errors import EvaluationError, SemanticError
from ..lang import ast
from ..model.graph import ObjectId, PathPropertyGraph, path_edges, path_nodes
from ..model.setops import empty_graph, graph_union
from ..model.values import ValueSet, as_value_set
from ..paths.walk import AllPathsHandle, Walk
from .context import EvalContext
from .expressions import ExpressionEvaluator

__all__ = ["evaluate_construct", "identity_item_spec"]


class _PieceGraph:
    """Mutable accumulator for one CONSTRUCT item's output graph."""

    def __init__(self) -> None:
        self.nodes: Set[ObjectId] = set()
        self.edges: Dict[ObjectId, Tuple[ObjectId, ObjectId]] = {}
        self.paths: Dict[ObjectId, Tuple[ObjectId, ...]] = {}
        self.labels: Dict[ObjectId, Set[str]] = defaultdict(set)
        self.props: Dict[ObjectId, Dict[str, ValueSet]] = defaultdict(dict)

    def add_labels(self, obj: ObjectId, labels) -> None:
        if labels:
            self.labels[obj].update(labels)

    def add_props(self, obj: ObjectId, props: Dict[str, ValueSet]) -> None:
        if props:
            store = self.props[obj]
            for key, values in props.items():
                store[key] = store.get(key, frozenset()) | values

    def discard(self, doomed: Set[ObjectId]) -> None:
        self.nodes -= doomed
        for obj in doomed:
            self.edges.pop(obj, None)
            self.paths.pop(obj, None)
            self.labels.pop(obj, None)
            self.props.pop(obj, None)
        # Drop edges whose endpoints were discarded, then paths that lost
        # a constituent — no dangling references survive.
        self.edges = {
            e: (s, d)
            for e, (s, d) in self.edges.items()
            if s in self.nodes and d in self.nodes
        }
        self.paths = {
            p: seq
            for p, seq in self.paths.items()
            if all(n in self.nodes for n in path_nodes(seq))
            and all(e in self.edges for e in path_edges(seq))
        }

    def build(self) -> PathPropertyGraph:
        known = self.nodes | set(self.edges) | set(self.paths)
        return PathPropertyGraph(
            nodes=self.nodes,
            edges=self.edges,
            paths=self.paths,
            labels={o: frozenset(l) for o, l in self.labels.items() if o in known},
            properties={o: p for o, p in self.props.items() if o in known},
        )


def _flatten_labels(labels: Tuple[Tuple[str, ...], ...]) -> List[str]:
    return [label for group in labels for label in group]


def _group_indices(
    table: BindingTable,
    exprs: Sequence[ast.Expr],
    ev: ExpressionEvaluator,
) -> List[Tuple[Tuple[Any, ...], List[int]]]:
    """Group row indices by the values of *exprs* (MISSING for unbound).

    The columnar counterpart of per-row :func:`_group_key`: plain
    variables read their vector directly, other expressions evaluate
    against the lazily-materialized row views.
    """
    nrows = len(table)
    key_columns: List[List[Any]] = []
    for expr in exprs:
        if isinstance(expr, ast.Var):
            vector = table.column_values(expr.name)
            if vector is None:
                key_columns.append([MISSING] * nrows)
            else:
                key_columns.append(
                    [MISSING if v is ABSENT else v for v in vector]
                )
        else:
            key_columns.append(
                [ev.evaluate(expr, row) for row in table.rows]
            )
    groups: Dict[Tuple[Any, ...], List[int]] = {}
    for index in range(nrows):
        key = tuple(column[index] for column in key_columns)
        groups.setdefault(key, []).append(index)
    return sorted(groups.items(), key=lambda item: tuple(map(_token, item[0])))


def _gather_with_var(
    table: BindingTable,
    var: str,
    indices: List[int],
    values: List[Any],
) -> BindingTable:
    """Rows of *table* at *indices* (in that order) with *var* set to the
    parallel *values* vector; deduplicates, like the row-based rebuild."""
    variables = list(table.variables)
    data = {
        v: [table.column_values(v)[i] for i in indices] for v in variables
    }
    if var not in data:
        variables.append(var)
    data[var] = values
    columns = tuple(table.columns) + (var,)
    return BindingTable.from_columns(
        columns, variables, data, len(indices), dedup=True
    )


def _token(value: Any) -> str:
    return f"{type(value).__name__}:{value!r}"


class _ElementRecord:
    """Bookkeeping for one constructed element kind within an item."""

    def __init__(self, var: Optional[str], gamma: Tuple[ast.Expr, ...]) -> None:
        self.var = var
        self.gamma = gamma
        self.id_by_key: Dict[Tuple[Any, ...], ObjectId] = {}


def evaluate_construct(
    construct: ast.ConstructClause,
    omega: BindingTable,
    ctx: EvalContext,
    declared: FrozenSet[str],
) -> PathPropertyGraph:
    """Evaluate a CONSTRUCT clause over the binding set *omega*.

    ``shared_records`` carries unbound construct variables across items:
    "Unbound variables in a CONSTRUCT are useful if they occur multiple
    times in the construct patterns, in order to ensure that the same
    identities will be used" (Section 3) — so ``(cust ...)`` grouped in one
    item and referenced by an edge in another resolves to the same nodes.
    """
    result = empty_graph()
    shared_records: Dict[str, _ElementRecord] = {}
    for item_index, item in enumerate(construct.items):
        if isinstance(item, ast.GraphRefItem):
            result = graph_union(result, ctx.resolve_graph(item.name))
        else:
            piece = _evaluate_item(
                item, item_index, omega, ctx, declared, shared_records
            )
            result = graph_union(result, piece)
    return result


# ---------------------------------------------------------------------------
# One construct item
# ---------------------------------------------------------------------------

def _evaluate_item(
    item: ast.PatternItem,
    item_index: int,
    omega: BindingTable,
    ctx: EvalContext,
    declared: FrozenSet[str],
    shared_records: Optional[Dict[str, "_ElementRecord"]] = None,
) -> PathPropertyGraph:
    ev = ExpressionEvaluator(ctx)
    piece = _PieceGraph()
    maxdom = omega.maximal_domain()
    chain = item.chain

    sets_by_var: Dict[str, List[ast.SetAssign]] = defaultdict(list)
    removes_by_var: Dict[str, List[ast.RemoveAssign]] = defaultdict(list)
    for assign in item.sets:
        sets_by_var[assign.var].append(assign)
    for removal in item.removes:
        removes_by_var[removal.var].append(removal)

    # ---------------- Phase 1: node constructs -------------------------
    node_records: Dict[str, _ElementRecord] = {}
    anon_counter = 0
    node_vars_in_order: List[str] = []
    node_patterns: Dict[str, List[ast.NodePattern]] = defaultdict(list)
    for element in chain.nodes():
        var = element.var
        if var is None:
            var = f"#cnode{item_index}_{anon_counter}"
            anon_counter += 1
        if var not in node_patterns:
            node_vars_in_order.append(var)
        node_patterns[var].append(element)

    if shared_records is None:
        shared_records = {}
    table = omega
    for position, var in enumerate(node_vars_in_order):
        patterns = node_patterns[var]
        primary = patterns[0]
        existing = table.column_values(var)
        if var in shared_records and var not in declared:
            # The variable was grouped by an earlier construct item; reuse
            # its identities so the items connect (Section 3). Row order
            # is preserved — identities are filled into the var column.
            record = shared_records[var]
            vector = (
                list(existing) if existing is not None else [ABSENT] * len(table)
            )
            for key, indices in _group_indices(table, record.gamma, ev):
                obj = record.id_by_key.get(key)
                if obj is None:
                    continue
                piece.nodes.add(obj)
                piece.add_labels(obj, ctx.lookup_labels(obj))
                piece.add_props(obj, ctx.lookup_properties(obj))
                for index in indices:
                    if vector[index] is ABSENT:
                        vector[index] = obj
            node_records[var] = record
            table = _gather_with_var(table, var, list(range(len(table))), vector)
            continue
        gamma = _node_gamma(var, primary, table, declared)
        record = _ElementRecord(None if var.startswith("#cnode") else var, gamma)
        site = ("node", item_index, position)
        # The rebuilt table concatenates the groups in sorted-key order
        # (matching the row-based rebuild, which drove skolem generation).
        ordered_indices: List[int] = []
        values: List[Any] = []
        # Group rows and representative bindings are only materialized
        # when some expression will read them (copies, property
        # assignments, SET clauses with expressions); plain identity and
        # label constructs stay purely columnar.
        sets = sets_by_var.get(var, ())
        removes = removes_by_var.get(var, ())
        needs_rows = (
            primary.copy_of is not None
            or any(p.assignments for p in patterns)
            or any(assign.label is None for assign in sets)
        )
        for key, indices in _group_indices(table, gamma, ev):
            # row_at first: materializing the parent's views lets
            # select_rows hand the group the shared views.
            representative = table.row_at(indices[0]) if needs_rows else None
            group = table.select_rows(indices) if needs_rows else None
            obj = _node_identity(var, primary, key, gamma, site, ctx, declared)
            if obj is None:
                ordered_indices.extend(indices)
                values.extend(
                    existing[i] if existing is not None else ABSENT
                    for i in indices
                )
                continue
            record.id_by_key[key] = obj
            labels, props = _element_labels_props(
                obj,
                patterns,
                var,
                primary.copy_of,
                representative,
                group,
                maxdom,
                ctx,
                ev,
                sets,
                removes,
                bound=(var in declared),
            )
            piece.nodes.add(obj)
            piece.add_labels(obj, labels)
            piece.add_props(obj, props)
            ctx.overlay_labels[obj] = frozenset(labels)
            ctx.overlay_props[obj] = dict(props)
            for index in indices:
                ordered_indices.append(index)
                current = existing[index] if existing is not None else ABSENT
                values.append(current if current is not ABSENT else obj)
        node_records[var] = record
        if var not in declared and not var.startswith("#cnode"):
            shared_records[var] = record
        table = _gather_with_var(table, var, ordered_indices, values)

    # ---------------- Phase 2: edge and path constructs -----------------
    edge_records: List[Tuple[_ElementRecord, ast.EdgePattern]] = []
    connectors = chain.connectors()
    node_seq = node_vars_in_order_from_chain(chain, item_index)
    for conn_index, connector in enumerate(connectors):
        src_var = node_seq[conn_index]
        dst_var = node_seq[conn_index + 1]
        if isinstance(connector, ast.EdgePattern):
            record = _construct_edge(
                connector,
                src_var,
                dst_var,
                conn_index,
                item_index,
                table,
                piece,
                ctx,
                ev,
                declared,
                maxdom,
                sets_by_var,
                removes_by_var,
            )
            edge_records.append((record, connector))
            if connector.var:
                table = _extend_with_record(table, connector.var, record, ev)
                node_records[connector.var] = record
        elif isinstance(connector, ast.PathPatternElem):
            record = _construct_path(
                connector,
                src_var,
                dst_var,
                conn_index,
                item_index,
                table,
                piece,
                ctx,
                ev,
                declared,
                maxdom,
                sets_by_var,
                removes_by_var,
            )
            if connector.var and record is not None:
                node_records.setdefault(connector.var, record)

    # ---------------- Phase 3: WHEN filtering ---------------------------
    if item.when is not None:
        rows = table.rows
        surviving = {
            index
            for index in range(len(table))
            if ev.evaluate_predicate(item.when, rows[index])
        }
        survivors: Set[ObjectId] = set()
        all_records = list(node_records.values())
        all_records.extend(record for record, _ in edge_records)
        for record in all_records:
            # An element survives when any row of its Γ-group does; the
            # group keys are recomputed columnar-ly, not per row.
            for key, indices in _group_indices(table, record.gamma, ev):
                obj = record.id_by_key.get(key)
                if obj is not None and not surviving.isdisjoint(indices):
                    survivors.add(obj)
        constructed = piece.nodes | set(piece.edges) | set(piece.paths)
        piece.discard(constructed - survivors)

    return piece.build()


def node_vars_in_order_from_chain(chain: ast.Chain, item_index: int) -> List[str]:
    """The per-position construct variable of each node in the chain."""
    names: List[str] = []
    anon_counter = 0
    seen: Dict[int, str] = {}
    assigned: Dict[str, str] = {}
    for element in chain.nodes():
        if element.var is not None:
            names.append(element.var)
        else:
            key = id(element)
            if key not in seen:
                seen[key] = f"#cnode{item_index}_{anon_counter}"
                anon_counter += 1
            names.append(seen[key])
    return names


def _node_gamma(
    var: str,
    pattern: ast.NodePattern,
    table: BindingTable,
    declared: FrozenSet[str],
) -> Tuple[ast.Expr, ...]:
    if var in declared:
        return (ast.Var(var),)
    if pattern.group is not None:
        return tuple(pattern.group)
    if pattern.copy_of is not None:
        return (ast.Var(pattern.copy_of),)
    return tuple(ast.Var(column) for column in table.columns)


def _node_identity(
    var: str,
    pattern: ast.NodePattern,
    key: Tuple[Any, ...],
    gamma: Tuple[ast.Expr, ...],
    site: Tuple[Any, ...],
    ctx: EvalContext,
    declared: FrozenSet[str],
) -> Optional[ObjectId]:
    if var in declared:
        # A declared variable's Γ is exactly (Var(var),), so the bound
        # identity is the group key itself.
        value = key[0]
        if value is MISSING:
            return None  # the formal semantics contributes the empty graph
        if isinstance(value, (Walk, AllPathsHandle)):
            raise SemanticError(
                f"variable {var!r} is a path, not a node, in CONSTRUCT"
            )
        return value
    if any(v is MISSING for v in key):
        return None
    return ctx.ids.skolem("n", site, key)


def _element_labels_props(
    obj: ObjectId,
    patterns: Sequence[Any],
    var: str,
    copy_of: Optional[str],
    representative: Optional[Binding],
    group: Optional[BindingTable],
    maxdom: FrozenSet[str],
    ctx: EvalContext,
    ev: ExpressionEvaluator,
    sets: Sequence[ast.SetAssign],
    removes: Sequence[ast.RemoveAssign],
    bound: bool,
) -> Tuple[Set[str], Dict[str, ValueSet]]:
    """Labels and properties of a constructed element (lambda_S / sigma_S).

    *representative* and *group* may be None when the caller has proved
    no expression will be evaluated (no copies, no property assignments,
    no SET clauses with expressions) — the purely columnar fast path.
    """
    labels: Set[str] = set()
    props: Dict[str, ValueSet] = {}
    if bound:
        labels |= ctx.lookup_labels(obj)
        props.update(ctx.lookup_properties(obj))
    elif copy_of is not None and copy_of in representative:
        source = representative[copy_of]
        if isinstance(source, Walk):
            raise SemanticError("cannot copy a computed path into an element")
        labels |= ctx.lookup_labels(source)
        props.update(ctx.lookup_properties(source))
    for pattern in patterns:
        labels.update(_flatten_labels(pattern.labels))
        for key, expr in pattern.assignments:
            value = ev.evaluate(expr, representative, group=group, maximal_domain=maxdom)
            props[key] = _to_value_set(value)
    for assign in sets:
        if assign.label is not None:
            labels.add(assign.label)
        else:
            value = ev.evaluate(
                assign.expr, representative, group=group, maximal_domain=maxdom
            )
            props[assign.key] = _to_value_set(value)
    for removal in removes:
        if removal.label is not None:
            labels.discard(removal.label)
        else:
            props.pop(removal.key, None)
    props = {key: values for key, values in props.items() if values}
    return labels, props


def _to_value_set(value: Any) -> ValueSet:
    if isinstance(value, tuple):  # COLLECT(...) results
        return as_value_set(frozenset(value))
    return as_value_set(value)


def _extend_with_record(
    table: BindingTable, var: str, record: _ElementRecord, ev: ExpressionEvaluator
) -> BindingTable:
    existing = table.column_values(var)
    vector = list(existing) if existing is not None else [ABSENT] * len(table)
    for key, indices in _group_indices(table, record.gamma, ev):
        obj = record.id_by_key.get(key)
        if obj is None:
            continue
        for index in indices:
            if vector[index] is ABSENT:
                vector[index] = obj
    return _gather_with_var(table, var, list(range(len(table))), vector)


# ---------------------------------------------------------------------------
# Edge constructs
# ---------------------------------------------------------------------------

def _construct_edge(
    pattern: ast.EdgePattern,
    src_var: str,
    dst_var: str,
    conn_index: int,
    item_index: int,
    table: BindingTable,
    piece: _PieceGraph,
    ctx: EvalContext,
    ev: ExpressionEvaluator,
    declared: FrozenSet[str],
    maxdom: FrozenSet[str],
    sets_by_var: Dict[str, List[ast.SetAssign]],
    removes_by_var: Dict[str, List[ast.RemoveAssign]],
) -> _ElementRecord:
    if pattern.direction == ast.UNDIRECTED:
        raise SemanticError("constructed edges must be directed")
    from_var, to_var = (
        (src_var, dst_var) if pattern.direction == ast.OUT else (dst_var, src_var)
    )
    var = pattern.var
    bound = var in declared if var else False
    gamma: List[ast.Expr] = [ast.Var(from_var), ast.Var(to_var)]
    if bound:
        gamma.append(ast.Var(var))
    if pattern.copy_of is not None:
        gamma.append(ast.Var(pattern.copy_of))
    if pattern.group is not None:
        gamma.extend(pattern.group)
    record = _ElementRecord(var, tuple(gamma))
    site = ("edge", item_index, conn_index)
    sets = sets_by_var.get(var, ()) if var else ()
    removes = removes_by_var.get(var, ()) if var else ()
    needs_rows = (
        pattern.copy_of is not None
        or bool(pattern.assignments)
        or any(assign.label is None for assign in sets)
    )
    for key, indices in _group_indices(table, gamma, ev):
        # Γ starts (from_var, to_var[, var]) — endpoints and a bound edge
        # identity are the leading key components, no row view needed.
        source = key[0]
        target = key[1]
        if source is MISSING or target is MISSING:
            continue  # dangling-edge prevention (A.3)
        if bound:
            edge = key[2]
            if edge is MISSING:
                continue
            if isinstance(edge, (Walk, AllPathsHandle)):
                raise SemanticError(
                    f"variable {var!r} is a path, not an edge, in CONSTRUCT"
                )
            home = ctx.graph_of(edge)
            if home is not None and edge not in home.edges:
                raise SemanticError(
                    f"variable {var!r} is not an edge in CONSTRUCT"
                )
            original = _edge_endpoints(edge, ctx)
            if original is not None and original != (source, target):
                raise EvaluationError(
                    f"bound edge {edge!r} constructed between different "
                    f"endpoints {source!r} -> {target!r}; changing an edge's "
                    f"endpoints violates its identity (use -[={var}]- to copy)"
                )
        else:
            edge = ctx.ids.skolem("e", site, key)
        record.id_by_key[key] = edge
        representative = table.row_at(indices[0]) if needs_rows else None
        group = table.select_rows(indices) if needs_rows else None
        labels, props = _element_labels_props(
            edge,
            [pattern],
            var or "",
            pattern.copy_of,
            representative,
            group,
            maxdom,
            ctx,
            ev,
            sets,
            removes,
            bound=bound,
        )
        piece.nodes.add(source)
        piece.nodes.add(target)
        piece.edges[edge] = (source, target)
        piece.add_labels(edge, labels)
        piece.add_props(edge, props)
        ctx.overlay_labels[edge] = frozenset(labels)
        ctx.overlay_props[edge] = dict(props)
    return record


def _edge_endpoints(edge: ObjectId, ctx: EvalContext):
    graph = ctx.graph_of(edge)
    if graph is not None and edge in graph.edges:
        return graph.endpoints(edge)
    return None


# ---------------------------------------------------------------------------
# Path constructs
# ---------------------------------------------------------------------------

def _construct_path(
    pattern: ast.PathPatternElem,
    src_var: str,
    dst_var: str,
    conn_index: int,
    item_index: int,
    table: BindingTable,
    piece: _PieceGraph,
    ctx: EvalContext,
    ev: ExpressionEvaluator,
    declared: FrozenSet[str],
    maxdom: FrozenSet[str],
    sets_by_var: Dict[str, List[ast.SetAssign]],
    removes_by_var: Dict[str, List[ast.RemoveAssign]],
) -> Optional[_ElementRecord]:
    var = pattern.var
    if var is None:
        raise SemanticError("a construct path pattern must reference a variable")
    if var not in declared:
        raise SemanticError(
            f"construct path variable {var!r} must be bound in the MATCH clause"
        )
    gamma = (ast.Var(var),)
    record = _ElementRecord(var, gamma)
    site = ("path", item_index, conn_index)
    for key, indices in _group_indices(table, gamma, ev):
        (value,) = key
        if value is MISSING:
            continue
        representative = table.row_at(indices[0])
        group = table.select_rows(indices)
        if isinstance(value, AllPathsHandle):
            if pattern.stored:
                raise SemanticError(
                    "ALL-paths variables may only be projected, not stored"
                )
            _project_members(piece, value.nodes, value.edges, ctx)
            continue
        if isinstance(value, Walk):
            sequence = value.sequence
        else:
            graph = ctx.graph_of(value)
            if graph is None or value not in graph.paths:
                raise SemanticError(
                    f"construct path variable {var!r} is not bound to a path"
                )
            sequence = graph.path_sequence(value)
        _project_members(
            piece, path_nodes(sequence), path_edges(sequence), ctx
        )
        if pattern.stored:
            if isinstance(value, Walk):
                pid = ctx.ids.skolem("p", site, key)
            else:
                pid = value
            piece.paths[pid] = tuple(sequence)
            record.id_by_key[key] = pid
            labels, props = _element_labels_props(
                pid,
                [pattern] if not isinstance(value, Walk) else [],
                var,
                None,
                representative,
                group,
                maxdom,
                ctx,
                ev,
                sets_by_var.get(var, ()),
                removes_by_var.get(var, ()),
                bound=not isinstance(value, Walk),
            )
            labels.update(_flatten_labels(pattern.labels))
            for prop_key, expr in pattern.assignments:
                result = ev.evaluate(
                    expr, representative, group=group, maximal_domain=maxdom
                )
                props[prop_key] = _to_value_set(result)
            props = {k: v for k, v in props.items() if v}
            piece.add_labels(pid, labels)
            piece.add_props(pid, props)
            ctx.overlay_labels[pid] = frozenset(labels)
            ctx.overlay_props[pid] = dict(props)
    return record


# ---------------------------------------------------------------------------
# Identity-projection analysis (incremental view maintenance)
# ---------------------------------------------------------------------------

def identity_item_spec(
    item: ast.PatternItem,
    match_node_vars: FrozenSet[str],
    match_edge_orientations: Dict[str, Tuple[str, str]],
) -> Optional[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """The ``(node_vars, edge_vars)`` of a *pure identity* construct item.

    A pure identity item re-emits matched objects unchanged: every node
    pattern is a bound match node variable and every edge pattern a bound
    match edge variable between the same (orientation-resolved) endpoint
    variables — no labels, property tests/binds/assignments, copies,
    GROUP, WHEN, SET or REMOVE. For such items the constructed graph is
    exactly the union of the bound objects with their base-graph labels
    and properties, which is what lets
    :mod:`repro.eval.maintenance` patch a materialized view by support
    counting instead of re-running CONSTRUCT. Returns None when the item
    is anything richer (the full evaluator remains the only correct
    interpretation).
    """
    if item.when is not None or item.sets or item.removes:
        return None

    def plain(pattern) -> bool:
        return not (
            pattern.labels
            or pattern.prop_tests
            or pattern.prop_binds
            or pattern.copy_of is not None
            or pattern.group is not None
            or pattern.assignments
        )

    node_vars: List[str] = []
    for element in item.chain.nodes():
        if element.var is None or element.var not in match_node_vars:
            return None
        if not plain(element):
            return None
        node_vars.append(element.var)
    edge_vars: List[str] = []
    connectors = item.chain.connectors()
    for index, connector in enumerate(connectors):
        if not isinstance(connector, ast.EdgePattern):
            return None
        if connector.var is None or not plain(connector):
            return None
        if connector.direction == ast.OUT:
            endpoints = (node_vars[index], node_vars[index + 1])
        elif connector.direction == ast.IN:
            endpoints = (node_vars[index + 1], node_vars[index])
        else:
            return None
        if match_edge_orientations.get(connector.var) != endpoints:
            return None
        edge_vars.append(connector.var)
    return tuple(node_vars), tuple(edge_vars)


def _project_members(
    piece: _PieceGraph,
    nodes: Sequence[ObjectId],
    edges: Sequence[ObjectId],
    ctx: EvalContext,
) -> None:
    """Project nodes/edges (with their labels and properties) into a piece."""
    for node in nodes:
        piece.nodes.add(node)
        piece.add_labels(node, ctx.lookup_labels(node))
        piece.add_props(node, ctx.lookup_properties(node))
    for edge in edges:
        graph = ctx.graph_of(edge)
        if graph is None or edge not in graph.edges:
            raise EvaluationError(f"cannot project unknown edge {edge!r}")
        piece.edges[edge] = graph.endpoints(edge)
        piece.add_labels(edge, ctx.lookup_labels(edge))
        piece.add_props(edge, ctx.lookup_properties(edge))
