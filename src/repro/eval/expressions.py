"""Expression evaluation — Appendix A.1 semantics.

Expressions evaluate over one binding (a row) and an
:class:`~repro.eval.context.EvalContext` that answers label/property
lookups. Values flow as:

* graph object identifiers (nodes/edges/paths) and
  :class:`~repro.paths.walk.Walk` values for computed paths,
* scalars (``bool``/``int``/``float``/``str``/``Date``),
* value sets (``frozenset``) — property lookups always produce sets;
  an *absent* property is the empty set (comparisons against it are
  false, SIZE can detect it — Section 3),
* tuples for list values (``nodes(p)``, ``collect(...)``).

Aggregates evaluate against a *group* of rows supplied by the caller
(CONSTRUCT grouping or SELECT grouping); referencing an aggregate without
a group is an error.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Optional, Sequence

from ..algebra.aggregates import evaluate_aggregate, is_aggregate_name
from ..algebra.binding import Binding, BindingTable
from ..errors import EvaluationError
from ..lang import ast
from ..model.values import (
    EMPTY_SET,
    as_scalar,
    gcore_compare,
    gcore_equals,
    gcore_in,
    gcore_subset,
    truthy,
)
from ..paths.walk import AllPathsHandle, Walk
from .context import EvalContext

__all__ = ["ExpressionEvaluator", "expr_has_aggregate", "expr_variables"]


def expr_has_aggregate(expr: Optional[ast.Expr]) -> bool:
    """True iff *expr* contains an aggregate function call."""
    if expr is None:
        return False
    if isinstance(expr, ast.FuncCall):
        if expr.star or is_aggregate_name(expr.name):
            return True
        return any(expr_has_aggregate(arg) for arg in expr.args)
    if isinstance(expr, ast.Unary):
        return expr_has_aggregate(expr.operand)
    if isinstance(expr, ast.Binary):
        return expr_has_aggregate(expr.left) or expr_has_aggregate(expr.right)
    if isinstance(expr, ast.CaseExpr):
        branches = any(
            expr_has_aggregate(c) or expr_has_aggregate(v) for c, v in expr.whens
        )
        return branches or expr_has_aggregate(expr.default)
    if isinstance(expr, ast.Index):
        return expr_has_aggregate(expr.base) or expr_has_aggregate(expr.index)
    if isinstance(expr, ast.Prop):
        return expr_has_aggregate(expr.base)
    if isinstance(expr, ast.ListLiteral):
        return any(expr_has_aggregate(item) for item in expr.items)
    return False


def expr_variables(expr: Optional[ast.Expr]) -> FrozenSet[str]:
    """The free variables of an expression (patterns included)."""
    names: set = set()

    def visit(node) -> None:
        if node is None:
            return
        if isinstance(node, ast.Var):
            names.add(node.name)
        elif isinstance(node, ast.Prop):
            visit(node.base)
        elif isinstance(node, ast.LabelTest):
            names.add(node.var)
        elif isinstance(node, ast.Unary):
            visit(node.operand)
        elif isinstance(node, ast.Binary):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, ast.CaseExpr):
            for condition, value in node.whens:
                visit(condition)
                visit(value)
            visit(node.default)
        elif isinstance(node, ast.Index):
            visit(node.base)
            visit(node.index)
        elif isinstance(node, ast.ListLiteral):
            for item in node.items:
                visit(item)
        elif isinstance(node, ast.ExistsPattern):
            for element in node.chain.elements:
                if getattr(element, "var", None):
                    names.add(element.var)
        # ExistsQuery correlation is resolved dynamically; its variables
        # are intentionally not considered free here.

    visit(expr)
    return frozenset(names)


class ExpressionEvaluator:
    """Evaluates expressions over bindings in an evaluation context."""

    def __init__(self, context: EvalContext) -> None:
        self._ctx = context

    # ------------------------------------------------------------------
    def evaluate(
        self,
        expr: ast.Expr,
        row: Binding,
        group: Optional[BindingTable] = None,
        maximal_domain: Optional[FrozenSet[str]] = None,
    ) -> Any:
        """Evaluate *expr* for *row*.

        *group* supplies the rows an aggregate ranges over;
        *maximal_domain* feeds the COUNT(*) maximality rule.
        """
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise EvaluationError(f"cannot evaluate expression {expr!r}")
        return method(expr, row, group, maximal_domain)

    def evaluate_predicate(self, expr: ast.Expr, row: Binding) -> bool:
        """Evaluate *expr* as a WHERE condition (coerced to a boolean)."""
        return truthy(self.evaluate(expr, row))

    # -- leaves ----------------------------------------------------------
    def _eval_Literal(self, expr, row, group, maxdom):
        return expr.value

    def _eval_ListLiteral(self, expr, row, group, maxdom):
        return tuple(self.evaluate(item, row, group, maxdom) for item in expr.items)

    def _eval_Param(self, expr, row, group, maxdom):
        if expr.name not in self._ctx.params:
            raise EvaluationError(f"missing query parameter: ${expr.name}")
        value = self._ctx.params[expr.name]
        if isinstance(value, (set, list)):
            return frozenset(value)
        return value

    def _eval_Var(self, expr, row, group, maxdom):
        if expr.name in row:
            return row[expr.name]
        return EMPTY_SET  # unbound (e.g. after a failed OPTIONAL): absent

    def _eval_Prop(self, expr, row, group, maxdom):
        base = self.evaluate(expr.base, row, group, maxdom)
        if isinstance(base, Walk):
            return EMPTY_SET  # computed paths carry no stored properties
        if isinstance(base, (frozenset, tuple)):
            return EMPTY_SET
        if base is None:
            return EMPTY_SET
        return self._ctx.lookup_property(base, expr.key)

    def _eval_LabelTest(self, expr, row, group, maxdom):
        if expr.var not in row:
            return False
        value = row[expr.var]
        if isinstance(value, Walk):
            return False
        labels = self._ctx.lookup_labels(value)
        return any(label in labels for label in expr.labels)

    # -- operators -------------------------------------------------------
    def _eval_Unary(self, expr, row, group, maxdom):
        if expr.op == "not":
            return not truthy(self.evaluate(expr.operand, row, group, maxdom))
        value = as_scalar(self.evaluate(expr.operand, row, group, maxdom))
        if isinstance(value, frozenset):
            return EMPTY_SET
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise EvaluationError(f"unary {expr.op} over non-number: {value!r}")
        return -value if expr.op == "-" else +value

    def _eval_Binary(self, expr, row, group, maxdom):
        op = expr.op
        if op == "and":
            return (
                truthy(self.evaluate(expr.left, row, group, maxdom))
                and truthy(self.evaluate(expr.right, row, group, maxdom))
            )
        if op == "or":
            return (
                truthy(self.evaluate(expr.left, row, group, maxdom))
                or truthy(self.evaluate(expr.right, row, group, maxdom))
            )
        if op == "xor":
            return truthy(self.evaluate(expr.left, row, group, maxdom)) != truthy(
                self.evaluate(expr.right, row, group, maxdom)
            )
        left = self.evaluate(expr.left, row, group, maxdom)
        right = self.evaluate(expr.right, row, group, maxdom)
        if op == "=":
            return gcore_equals(left, right)
        if op == "<>":
            return not gcore_equals(left, right)
        if op in ("<", "<=", ">", ">="):
            return gcore_compare(op, left, right)
        if op == "in":
            return gcore_in(left, right)
        if op == "subset":
            return gcore_subset(left, right)
        if op in ("+", "-", "*", "/", "%"):
            return self._arithmetic(op, left, right)
        raise EvaluationError(f"unknown binary operator: {op}")

    @staticmethod
    def _arithmetic(op: str, left: Any, right: Any) -> Any:
        left = as_scalar(left)
        right = as_scalar(right)
        if isinstance(left, frozenset) or isinstance(right, frozenset):
            return EMPTY_SET  # absent/multi-valued operand propagates
        if op == "+" and (isinstance(left, str) or isinstance(right, str)):
            if not (isinstance(left, str) and isinstance(right, str)):
                raise EvaluationError(
                    f"cannot concatenate {left!r} and {right!r}"
                )
            return left + right
        for value in (left, right):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EvaluationError(
                    f"arithmetic over non-number: {value!r}"
                )
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise EvaluationError("division by zero")
            return left / right
        if op == "%":
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right
        raise EvaluationError(f"unknown arithmetic operator: {op}")

    # -- calls -------------------------------------------------------------
    def _eval_FuncCall(self, expr, row, group, maxdom):
        name = expr.name.lower()
        if expr.star or is_aggregate_name(name):
            if group is None:
                raise EvaluationError(
                    f"aggregate {expr.name}(...) outside a grouping context"
                )
            argument = None
            if expr.args:
                arg_expr = expr.args[0]
                argument = lambda r: self.evaluate(arg_expr, r)  # noqa: E731
            return evaluate_aggregate(
                name,
                list(group),
                argument,
                star=expr.star,
                distinct=expr.distinct,
                maximal_domain=maxdom,
            )
        args = [self.evaluate(arg, row, group, maxdom) for arg in expr.args]
        return self.call_builtin(name, args)

    def call_builtin(self, name: str, args: Sequence[Any]) -> Any:
        """Dispatch a non-aggregate builtin over already-evaluated args.

        Public because the vectorized kernels (:mod:`repro.eval.kernels`)
        evaluate argument vectors themselves and reuse this dispatcher
        element-wise, keeping one implementation of builtin semantics.
        """
        if name == "nodes":
            return self._path_members(args, edges=False)
        if name == "edges":
            return self._path_members(args, edges=True)
        if name == "labels":
            (value,) = args
            if isinstance(value, Walk):
                return frozenset()
            return self._ctx.lookup_labels(value)
        if name == "size":
            (value,) = args
            if isinstance(value, (frozenset, tuple, str)):
                return len(value)
            if value is None:
                return 0
            return 1
        if name == "length":
            (value,) = args
            if isinstance(value, Walk):
                return value.length()
            graph = self._ctx.graph_of(value)
            if graph is not None and value in graph.paths:
                return graph.path_length(value)
            raise EvaluationError(f"LENGTH of a non-path value: {value!r}")
        if name == "cost":
            (value,) = args
            if isinstance(value, Walk):
                return value.cost
            raise EvaluationError("COST() applies to computed paths only")
        if name == "id":
            (value,) = args
            return value
        if name == "tostring":
            (value,) = args
            value = as_scalar(value)
            return str(value)
        if name == "tointeger":
            (value,) = args
            value = as_scalar(value)
            try:
                return int(value)
            except (TypeError, ValueError):
                return EMPTY_SET
        if name == "tofloat":
            (value,) = args
            value = as_scalar(value)
            try:
                return float(value)
            except (TypeError, ValueError):
                return EMPTY_SET
        if name == "coalesce":
            for value in args:
                if value is None or value == EMPTY_SET:
                    continue
                return value
            return EMPTY_SET
        if name == "abs":
            (value,) = args
            value = as_scalar(value)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return abs(value)
            return EMPTY_SET
        raise EvaluationError(f"unknown function: {name}")

    def _path_members(self, args: Sequence[Any], edges: bool) -> Any:
        (value,) = args
        if isinstance(value, Walk):
            return value.edges() if edges else value.nodes()
        if isinstance(value, AllPathsHandle):
            return value.edges if edges else value.nodes
        graph = self._ctx.graph_of(value)
        if graph is not None and value in graph.paths:
            return graph.path_edges(value) if edges else graph.path_nodes(value)
        raise EvaluationError(
            f"{'EDGES' if edges else 'NODES'} of a non-path value: {value!r}"
        )

    # -- control -------------------------------------------------------------
    def _eval_CaseExpr(self, expr, row, group, maxdom):
        for condition, result in expr.whens:
            if truthy(self.evaluate(condition, row, group, maxdom)):
                return self.evaluate(result, row, group, maxdom)
        if expr.default is not None:
            return self.evaluate(expr.default, row, group, maxdom)
        return EMPTY_SET

    def _eval_Index(self, expr, row, group, maxdom):
        base = self.evaluate(expr.base, row, group, maxdom)
        index = as_scalar(self.evaluate(expr.index, row, group, maxdom))
        if not isinstance(index, int) or isinstance(index, bool):
            raise EvaluationError(f"list index must be an integer: {index!r}")
        if isinstance(base, tuple):
            if 0 <= index < len(base):
                return base[index]
            return EMPTY_SET  # out of range: absent (G-CORE counts from 0)
        return EMPTY_SET

    # -- subqueries -------------------------------------------------------
    def _eval_ExistsQuery(self, expr, row, group, maxdom):
        from .query import evaluate_query  # local import: cycle

        result = evaluate_query(expr.query, self._ctx.child(), seed=row)
        from ..model.graph import PathPropertyGraph

        if isinstance(result, PathPropertyGraph):
            return not result.is_empty()
        return bool(result)

    def _eval_ExistsPattern(self, expr, row, group, maxdom):
        from .match import chain_matches  # local import: cycle

        return chain_matches(expr.chain, self._ctx, row)
