"""MATCH evaluation — Appendix A.2.

A match block is decomposed into *atoms* — node, edge and path patterns —
that are evaluated incrementally against a growing binding table. A
cost-based planner (see :mod:`repro.eval.planner`) orders atoms by
estimated output cardinality over the graph's statistics so that
selective, already-connected atoms run first; path atoms run once their
source endpoint is bound, expanding via single-source product-graph
searches. Prepared queries memoize the chosen orderings per pattern site
and graph (:class:`~repro.eval.planner.PlanCache`).

Semantics notes:

* homomorphism semantics — no injectivity constraints (Section 6);
* anonymous pattern elements are existential: they do not contribute
  binding columns (internally they get hidden names, projected away);
* ``OPTIONAL`` blocks left-outer-join in syntactic order (A.2);
* ``WHERE`` filters; implicit existential patterns inside WHERE evaluate
  the pattern seeded with the current row (A.2's `J.K_{Omega,G}`).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..algebra.binding import Binding, BindingTable
from ..algebra.ops import table_left_join
from ..errors import EvaluationError, SemanticError
from ..lang import ast
from ..model.graph import ObjectId, PathPropertyGraph
from ..model.values import gcore_equals
from ..paths.automaton import NFA, compile_regex, regex_view_names
from ..paths.product import PathFinder
from ..paths.walk import AllPathsHandle, Walk
from .analysis import analyze_match
from .context import EvalContext
from .expressions import ExpressionEvaluator
from .planner import order_atoms

__all__ = [
    "evaluate_match",
    "evaluate_block",
    "chain_matches",
    "decompose_chain",
    "NodeAtom",
    "EdgeAtom",
    "PathAtom",
]

ANON_PREFIX = "#anon"

_NFA_CACHE: Dict[ast.RegexExpr, NFA] = {}


def _nfa_for(regex: Optional[ast.RegexExpr]) -> NFA:
    key = regex if regex is not None else ast.RStar(ast.RAnyEdge())
    if key not in _NFA_CACHE:
        _NFA_CACHE[key] = compile_regex(key)
    return _NFA_CACHE[key]


def _sorted_ids(ids: Iterable[ObjectId]) -> List[ObjectId]:
    return sorted(ids, key=str)


def _label_candidates(
    universe: FrozenSet[ObjectId],
    labels: Tuple[Tuple[str, ...], ...],
    index,
) -> List[ObjectId]:
    """Candidates satisfying a conjunction of label-disjunction groups."""
    if not labels:
        return _sorted_ids(universe)
    current: Optional[Set[ObjectId]] = None
    for group in labels:
        group_set: Set[ObjectId] = set()
        for label in group:
            group_set |= index(label)
        current = group_set if current is None else current & group_set
        if not current:
            return []
    return _sorted_ids(current or set())


def _satisfies_labels(
    graph_labels: FrozenSet[str], labels: Tuple[Tuple[str, ...], ...]
) -> bool:
    return all(any(l in graph_labels for l in group) for group in labels)


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------

class NodeAtom:
    """A node pattern bound to a variable (named or hidden)."""

    kind = "node"

    def __init__(self, pattern: ast.NodePattern, var: str) -> None:
        if pattern.copy_of is not None:
            raise SemanticError("copy patterns (=x) are CONSTRUCT-only")
        self.pattern = pattern
        self.var = var

    def binds(self) -> FrozenSet[str]:
        return frozenset(
            {self.var, *(v for _, v in self.pattern.prop_binds)}
        )

    def requires(self) -> FrozenSet[str]:
        return frozenset()

    def extend(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
    ) -> BindingTable:
        pattern = self.pattern
        out_rows: List[Binding] = []
        candidate_cache: Optional[List[ObjectId]] = None
        for row in table:
            if self.var in row:
                candidates = [row[self.var]]
            else:
                if candidate_cache is None:
                    candidate_cache = _label_candidates(
                        graph.nodes, pattern.labels, graph.nodes_with_label
                    )
                candidates = candidate_cache
            for node in candidates:
                if node not in graph.nodes:
                    continue
                if not _satisfies_labels(graph.labels(node), pattern.labels):
                    continue
                if not _property_tests_pass(graph, node, pattern.prop_tests, ev, row):
                    continue
                base = row if self.var in row else row.extend(self.var, node)
                out_rows.extend(
                    _unroll_property_binds(graph, node, pattern.prop_binds, base)
                )
        columns = tuple(table.columns) + tuple(self.binds())
        return BindingTable(columns, out_rows)


class EdgeAtom:
    """An edge pattern between two node variables."""

    kind = "edge"

    def __init__(
        self, pattern: ast.EdgePattern, src_var: str, dst_var: str, var: Optional[str]
    ) -> None:
        if pattern.copy_of is not None:
            raise SemanticError("copy patterns -[=y]- are CONSTRUCT-only")
        self.pattern = pattern
        self.src_var = src_var
        self.dst_var = dst_var
        self.var = var  # None = anonymous (existential, not bound)

    def binds(self) -> FrozenSet[str]:
        names = {self.src_var, self.dst_var}
        if self.var:
            names.add(self.var)
        names.update(v for _, v in self.pattern.prop_binds)
        return frozenset(names)

    def requires(self) -> FrozenSet[str]:
        return frozenset()

    def _orientations(self) -> List[Tuple[str, str]]:
        if self.pattern.direction == ast.OUT:
            return [(self.src_var, self.dst_var)]
        if self.pattern.direction == ast.IN:
            return [(self.dst_var, self.src_var)]
        return [(self.src_var, self.dst_var), (self.dst_var, self.src_var)]

    def extend(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
    ) -> BindingTable:
        pattern = self.pattern
        out_rows: List[Binding] = []
        scan_cache: Optional[List[ObjectId]] = None
        for row in table:
            for from_var, to_var in self._orientations():
                if self.var and self.var in row:
                    candidates: Iterable[ObjectId] = [row[self.var]]
                elif from_var in row:
                    source = row[from_var]
                    candidates = graph.out_edges(source) if source in graph.nodes else ()
                elif to_var in row:
                    target = row[to_var]
                    candidates = graph.in_edges(target) if target in graph.nodes else ()
                else:
                    if scan_cache is None:
                        scan_cache = _label_candidates(
                            graph.edges, pattern.labels, graph.edges_with_label
                        )
                    candidates = scan_cache
                for edge in _sorted_ids(candidates):
                    if edge not in graph.edges:
                        continue
                    if not _satisfies_labels(graph.labels(edge), pattern.labels):
                        continue
                    src, dst = graph.endpoints(edge)
                    if from_var in row and row[from_var] != src:
                        continue
                    if to_var in row and row[to_var] != dst:
                        continue
                    if not _property_tests_pass(
                        graph, edge, pattern.prop_tests, ev, row
                    ):
                        continue
                    extended = row
                    if from_var not in extended:
                        extended = extended.extend(from_var, src)
                    if to_var not in extended:
                        extended = extended.extend(to_var, dst)
                    if self.var and self.var not in extended:
                        extended = extended.extend(self.var, edge)
                    out_rows.extend(
                        _unroll_property_binds(
                            graph, edge, pattern.prop_binds, extended
                        )
                    )
        columns = tuple(table.columns) + tuple(self.binds())
        return BindingTable(columns, out_rows)


class PathAtom:
    """A path pattern between two node variables (Appendix A.2)."""

    kind = "path"

    def __init__(
        self, pattern: ast.PathPatternElem, src_var: str, dst_var: str
    ) -> None:
        self.pattern = pattern
        self.src_var = src_var
        self.dst_var = dst_var

    @property
    def from_var(self) -> str:
        return self.dst_var if self.pattern.direction == ast.IN else self.src_var

    @property
    def to_var(self) -> str:
        return self.src_var if self.pattern.direction == ast.IN else self.dst_var

    def binds(self) -> FrozenSet[str]:
        names = {self.src_var, self.dst_var}
        if self.pattern.var:
            names.add(self.pattern.var)
        if self.pattern.cost_var:
            names.add(self.pattern.cost_var)
        return frozenset(names)

    def requires(self) -> FrozenSet[str]:
        return frozenset()

    # ------------------------------------------------------------------
    def extend(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
        ctx: EvalContext,
    ) -> BindingTable:
        if self.pattern.direction == ast.UNDIRECTED:
            raise SemanticError("path patterns must be directed (-/ /-> or <-/ /-)")
        if self.pattern.stored:
            return self._extend_stored(table, graph, ev)
        return self._extend_computed(table, graph, ev, ctx)

    # -- stored paths ------------------------------------------------------
    def _extend_stored(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
    ) -> BindingTable:
        pattern = self.pattern
        candidates = _label_candidates(
            graph.paths, pattern.labels, graph.paths_with_label
        )
        out_rows: List[Binding] = []
        for row in table:
            for pid in candidates:
                sequence = graph.path_sequence(pid)
                start, end = sequence[0], sequence[-1]
                if self.from_var in row and row[self.from_var] != start:
                    continue
                if self.to_var in row and row[self.to_var] != end:
                    continue
                if pattern.var and pattern.var in row and row[pattern.var] != pid:
                    continue
                extended = row
                if self.from_var not in extended:
                    extended = extended.extend(self.from_var, start)
                if self.to_var not in extended:
                    extended = extended.extend(self.to_var, end)
                if pattern.var and pattern.var not in extended:
                    extended = extended.extend(pattern.var, pid)
                if pattern.cost_var:
                    extended = extended.extend(
                        pattern.cost_var, len(sequence) // 2
                    )
                out_rows.append(extended)
        columns = tuple(table.columns) + tuple(self.binds())
        return BindingTable(columns, out_rows)

    # -- computed paths ------------------------------------------------------
    def _finder(
        self, graph: PathPropertyGraph, ctx: EvalContext
    ) -> PathFinder:
        nfa = _nfa_for(self.pattern.regex)
        views = {
            name: ctx.segments_for(name, graph)
            for name in regex_view_names(self.pattern.regex)
        }
        return PathFinder(graph, nfa, views)

    def _extend_computed(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
        ctx: EvalContext,
    ) -> BindingTable:
        pattern = self.pattern
        finder = self._finder(graph, ctx)
        from_var, to_var = self.from_var, self.to_var
        out_rows: List[Binding] = []

        # Group rows by the source endpoint so each distinct source runs a
        # single single-source search.
        rows_by_source: Dict[Any, List[Binding]] = defaultdict(list)
        unbound_rows: List[Binding] = []
        for row in table:
            if from_var in row:
                rows_by_source[row[from_var]].append(row)
            else:
                unbound_rows.append(row)
        if unbound_rows:
            # Source endpoint entirely unconstrained: try every node.
            for row in unbound_rows:
                for node in _sorted_ids(graph.nodes):
                    rows_by_source[node].append(row.extend(from_var, node))

        for source in sorted(rows_by_source, key=str):
            rows = rows_by_source[source]
            if source not in graph.nodes:
                continue
            if pattern.mode == "reach":
                reachable = finder.reachable_from(source)
                for row in rows:
                    if to_var in row:
                        if row[to_var] in reachable:
                            out_rows.append(row)
                    else:
                        for target in _sorted_ids(reachable):
                            out_rows.append(row.extend(to_var, target))
            elif pattern.mode == "all":
                for row in rows:
                    targets = (
                        [row[to_var]]
                        if to_var in row
                        else _sorted_ids(graph.nodes)
                    )
                    for target in targets:
                        nodes, edges = finder.all_paths_projection(source, target)
                        if not nodes:
                            continue
                        handle = AllPathsHandle(
                            source, target, tuple(_sorted_ids(nodes)),
                            tuple(_sorted_ids(edges)),
                        )
                        extended = row
                        if to_var not in extended:
                            extended = extended.extend(to_var, target)
                        if pattern.var:
                            extended = extended.extend(pattern.var, handle)
                        out_rows.append(extended)
            elif pattern.count == 1:
                bound_targets = {
                    row[to_var] for row in rows if to_var in row
                }
                all_targets_bound = all(to_var in row for row in rows)
                walks = finder.shortest_from(
                    source, set(bound_targets) if all_targets_bound else None
                )
                for row in rows:
                    if to_var in row:
                        walk = walks.get(row[to_var])
                        if walk is not None:
                            out_rows.append(self._bind_walk(row, walk))
                    else:
                        for target in sorted(walks, key=str):
                            extended = row.extend(to_var, target)
                            out_rows.append(
                                self._bind_walk(extended, walks[target])
                            )
            else:
                for row in rows:
                    if to_var in row:
                        targets = [row[to_var]]
                    else:
                        targets = sorted(
                            finder.shortest_from(source), key=str
                        )
                    for target in targets:
                        for walk in finder.k_shortest(
                            source, target, pattern.count
                        ):
                            extended = row
                            if to_var not in extended:
                                extended = extended.extend(to_var, target)
                            out_rows.append(self._bind_walk(extended, walk))
        columns = tuple(table.columns) + tuple(self.binds())
        return BindingTable(columns, out_rows)

    def _bind_walk(self, row: Binding, walk: Walk) -> Binding:
        pattern = self.pattern
        if pattern.var and pattern.var not in row:
            row = row.extend(pattern.var, walk)
        if pattern.cost_var and pattern.cost_var not in row:
            cost = walk.cost
            if isinstance(cost, float) and cost.is_integer():
                cost = int(cost)
            row = row.extend(pattern.cost_var, cost)
        return row


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _property_tests_pass(
    graph: PathPropertyGraph,
    obj: ObjectId,
    tests: Tuple[Tuple[str, ast.Expr], ...],
    ev: ExpressionEvaluator,
    row: Binding,
) -> bool:
    for key, expr in tests:
        expected = ev.evaluate(expr, row)
        actual = graph.property(obj, key)
        if not (gcore_equals(actual, expected) or
                (not isinstance(expected, frozenset) and expected in actual)):
            return False
    return True


def _unroll_property_binds(
    graph: PathPropertyGraph,
    obj: ObjectId,
    binds: Tuple[Tuple[str, str], ...],
    row: Binding,
) -> List[Binding]:
    """Unroll multi-valued properties into per-value bindings (Section 3)."""
    rows = [row]
    for key, bind_var in binds:
        values = graph.property(obj, key)
        next_rows: List[Binding] = []
        for current in rows:
            if bind_var in current:
                if current[bind_var] in values:
                    next_rows.append(current)
            else:
                for value in sorted(values, key=lambda v: (str(type(v)), str(v))):
                    next_rows.append(current.extend(bind_var, value))
        rows = next_rows
        if not rows:
            break
    return rows


# ---------------------------------------------------------------------------
# Chain decomposition
# ---------------------------------------------------------------------------

class _AnonNamer:
    def __init__(self) -> None:
        self._counter = itertools.count()

    def fresh(self) -> str:
        return f"{ANON_PREFIX}{next(self._counter)}"


def decompose_chain(
    chain: ast.Chain,
    namer: _AnonNamer,
    name_anonymous_edges: bool = False,
) -> List[object]:
    """Split a chain into Node/Edge/Path atoms with resolved endpoints."""
    atoms: List[object] = []
    node_vars: List[str] = []
    for element in chain.nodes():
        var = element.var or namer.fresh()
        node_vars.append(var)
        atoms.append(NodeAtom(element, var))
    for index, connector in enumerate(chain.connectors()):
        src_var = node_vars[index]
        dst_var = node_vars[index + 1]
        if isinstance(connector, ast.EdgePattern):
            var = connector.var
            if var is None and name_anonymous_edges:
                var = namer.fresh()
            atoms.append(EdgeAtom(connector, src_var, dst_var, var))
        elif isinstance(connector, ast.PathPatternElem):
            atoms.append(PathAtom(connector, src_var, dst_var))
        else:  # pragma: no cover - parser guarantees the alternation
            raise SemanticError(f"unexpected chain element: {connector!r}")
    return atoms


# ---------------------------------------------------------------------------
# Block and clause evaluation
# ---------------------------------------------------------------------------

def _resolve_location(
    location: ast.PatternLocation,
    ctx: EvalContext,
    block_default: Optional[PathPropertyGraph] = None,
) -> PathPropertyGraph:
    if location.on is None:
        if block_default is not None:
            return block_default
        if ctx.current_graph is not None:
            return ctx.current_graph
        return ctx.default_graph()
    if isinstance(location.on, str):
        return ctx.resolve_graph(location.on)
    from .query import evaluate_query  # local import: cycle

    result = evaluate_query(location.on, ctx.child())
    if not isinstance(result, PathPropertyGraph):
        raise EvaluationError("ON (subquery) must produce a graph")
    return result


def _block_default_graph(
    block: ast.MatchBlock, ctx: EvalContext
) -> Optional[PathPropertyGraph]:
    """The graph ON-less patterns of *block* fall back to.

    The paper writes ``MATCH p1, p2 ON g`` with the trailing ON scoping
    the whole pattern list (final query of Section 3), so patterns
    without their own ON inherit the block's first specified location.
    """
    for location in block.patterns:
        if location.on is not None:
            return _resolve_location(location, ctx)
    return None


def _ordered_atoms(
    atoms: List[object],
    table: BindingTable,
    location: ast.PatternLocation,
    graph: PathPropertyGraph,
    ctx: EvalContext,
) -> List[object]:
    """Plan a pattern, consulting the prepared-query plan cache if any.

    Orderings are memoized per (pattern site, bound columns, graph) —
    pattern evaluation order never affects the result (the semantics is a
    join), so a cached permutation is always safe to replay against the
    identical site and graph.
    """
    bound = set(table.columns)
    if ctx.naive_planner:
        return order_atoms(atoms, bound, naive=True)
    stats = graph.statistics() if ctx.use_cost_planner else None
    cache = ctx.plan_cache
    if cache is None:
        return order_atoms(atoms, bound, stats=stats)
    columns = tuple(table.columns)
    memoized = cache.lookup(location, columns, graph)
    if memoized is not None and len(memoized) == len(atoms):
        return [atoms[i] for i in memoized]
    position = {id(atom): i for i, atom in enumerate(atoms)}
    ordered = order_atoms(atoms, bound, stats=stats)
    cache.store(location, columns, graph, [position[id(a)] for a in ordered])
    return ordered


def evaluate_block(
    block: ast.MatchBlock,
    ctx: EvalContext,
    seed: Optional[BindingTable] = None,
    keep_anonymous: bool = False,
    name_anonymous_edges: bool = False,
) -> BindingTable:
    """Evaluate one pattern block (the MATCH body or an OPTIONAL block)."""
    table = seed if seed is not None else BindingTable.unit()
    namer = _AnonNamer()
    ev = ExpressionEvaluator(ctx)
    primary_graph: Optional[PathPropertyGraph] = None
    block_default = _block_default_graph(block, ctx)
    for location in block.patterns:
        graph = _resolve_location(location, ctx, block_default)
        if primary_graph is None:
            primary_graph = graph
            ctx.current_graph = graph
        ctx.touch_graph(graph)
        atoms = decompose_chain(location.chain, namer, name_anonymous_edges)
        ordered = _ordered_atoms(atoms, table, location, graph, ctx)
        for atom in ordered:
            if isinstance(atom, PathAtom):
                table = atom.extend(table, graph, ev, ctx)
            else:
                table = atom.extend(table, graph, ev)
            if not table:
                break
    if block.where is not None and table:
        table = table.filter(lambda row: ev.evaluate_predicate(block.where, row))
    if not keep_anonymous:
        hidden = [c for c in table.columns if c.startswith(ANON_PREFIX)]
        if hidden:
            table = table.drop(hidden)
    return table


def evaluate_match(
    match: Optional[ast.MatchClause],
    ctx: EvalContext,
    seed: Optional[BindingTable] = None,
) -> BindingTable:
    """Evaluate a full MATCH clause: main block then OPTIONAL blocks (A.2)."""
    if match is None:
        return seed if seed is not None else BindingTable.unit()
    analyze_match(match)
    table = evaluate_block(match.block, ctx, seed)
    for optional in match.optionals:
        extended = evaluate_block(optional, ctx, seed=table)
        table = table_left_join(table, extended)
    return table


def chain_matches(chain: ast.Chain, ctx: EvalContext, row: Binding) -> bool:
    """Does *chain* match, given the bindings of *row*? (WHERE predicates.)"""
    variables = set()
    for element in chain.elements:
        var = getattr(element, "var", None)
        if var:
            variables.add(var)
    seed_row = row.project([v for v in variables if v in row])
    seed = BindingTable(tuple(seed_row.domain), [seed_row])
    block = ast.MatchBlock((ast.PatternLocation(chain, None),), None)
    # The block above is rebuilt per row; don't churn the prepared-query
    # plan cache with throwaway pattern sites.
    saved_cache, ctx.plan_cache = ctx.plan_cache, None
    try:
        return bool(evaluate_block(block, ctx, seed=seed))
    finally:
        ctx.plan_cache = saved_cache
