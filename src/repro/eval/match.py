"""MATCH evaluation — Appendix A.2.

A match block is decomposed into *atoms* — node, edge and path patterns —
that are evaluated incrementally against a growing binding table. A
cost-based planner (see :mod:`repro.eval.planner`) orders atoms by
estimated output cardinality over the graph's statistics so that
selective, already-connected atoms run first; path atoms run once their
source endpoint is bound, grouping the binding column by source id and
expanding via batched product-graph searches (one shared search
structure per group, :mod:`repro.paths.product`). Prepared queries
memoize the chosen orderings per pattern site and graph
(:class:`~repro.eval.planner.PlanCache`).

Semantics notes:

* homomorphism semantics — no injectivity constraints (Section 6);
* anonymous pattern elements are existential: they do not contribute
  binding columns (internally they get hidden names, projected away);
* ``OPTIONAL`` blocks left-outer-join in syntactic order (A.2);
* ``WHERE`` filters; implicit existential patterns inside WHERE evaluate
  the pattern seeded with the current row (A.2's `J.K_{Omega,G}`).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..algebra.binding import ABSENT, Binding, BindingTable, EMPTY_BINDING
from ..algebra.ops import table_left_join
from ..errors import EvaluationError, SemanticError
from ..lang import ast
from ..model.graph import ObjectId, PathPropertyGraph
from ..model.values import gcore_equals, truthy
from ..paths.automaton import NFA, compile_regex, regex_view_names
from ..paths.product import PathFinder
from ..paths.walk import AllPathsHandle, Walk
from .analysis import analyze_match
from .context import EvalContext
from .expressions import ExpressionEvaluator
from .kernels import ExpressionCompiler, KernelContext, compiled_filter_rows
from .planner import order_atoms
from .pushdown import PushdownPlan, split_conjuncts

__all__ = [
    "evaluate_match",
    "evaluate_block",
    "chain_matches",
    "decompose_chain",
    "match_rows_touching",
    "run_atom_sequence",
    "finish_block_where",
    "NodeAtom",
    "EdgeAtom",
    "PathAtom",
]

ANON_PREFIX = "#anon"

_NFA_CACHE: Dict[ast.RegexExpr, NFA] = {}


def _nfa_for(regex: Optional[ast.RegexExpr]) -> NFA:
    key = regex if regex is not None else ast.RStar(ast.RAnyEdge())
    if key not in _NFA_CACHE:
        _NFA_CACHE[key] = compile_regex(key)
    return _NFA_CACHE[key]


def _sorted_ids(ids: Iterable[ObjectId]) -> List[ObjectId]:
    return sorted(ids, key=str)


def _label_candidates(
    universe: FrozenSet[ObjectId],
    labels: Tuple[Tuple[str, ...], ...],
    index,
) -> List[ObjectId]:
    """Candidates satisfying a conjunction of label-disjunction groups."""
    if not labels:
        return _sorted_ids(universe)
    current: Optional[Set[ObjectId]] = None
    for group in labels:
        group_set: Set[ObjectId] = set()
        for label in group:
            group_set |= index(label)
        current = group_set if current is None else current & group_set
        if not current:
            return []
    return _sorted_ids(current or set())


def _satisfies_labels(
    graph_labels: FrozenSet[str], labels: Tuple[Tuple[str, ...], ...]
) -> bool:
    return all(any(l in graph_labels for l in group) for group in labels)


# ---------------------------------------------------------------------------
# Columnar expansion helpers
# ---------------------------------------------------------------------------

def _row_independent(expr: ast.Expr) -> bool:
    """Conservatively: does *expr* evaluate the same for every row?

    Only shapes that provably reference no binding are admitted (the
    common ``{name='Wagner'}`` and ``{since=$year}`` property tests);
    anything else stays on the per-row evaluation path.
    """
    if isinstance(expr, (ast.Literal, ast.Param)):
        return True
    if isinstance(expr, ast.Unary):
        return _row_independent(expr.operand)
    if isinstance(expr, ast.Binary):
        return _row_independent(expr.left) and _row_independent(expr.right)
    if isinstance(expr, ast.ListLiteral):
        return all(_row_independent(item) for item in expr.items)
    return False


def _split_prop_tests(
    tests: Tuple[Tuple[str, ast.Expr], ...], ev: ExpressionEvaluator
) -> Tuple[List[Tuple[str, Any]], List[Tuple[str, ast.Expr]]]:
    """Partition property tests into (key, pre-evaluated value) constants
    and (key, expr) row-dependent tests.

    A constant test that *raises* (e.g. a missing ``$param``) is kept on
    the dynamic path instead: the reference executor only evaluates
    tests once a candidate reaches them, so eager evaluation must never
    introduce an error the row-at-a-time executor would not produce.
    """
    const: List[Tuple[str, Any]] = []
    dynamic: List[Tuple[str, ast.Expr]] = []
    for key, expr in tests:
        if _row_independent(expr):
            try:
                const.append((key, ev.evaluate(expr, EMPTY_BINDING)))
            except Exception:
                dynamic.append((key, expr))
        else:
            dynamic.append((key, expr))
    return const, dynamic


def _property_value_ok(actual, expected) -> bool:
    """One property test against an already-evaluated expected value."""
    return gcore_equals(actual, expected) or (
        not isinstance(expected, frozenset) and expected in actual
    )


def _const_tests_pass(
    graph: PathPropertyGraph, obj: ObjectId, const: List[Tuple[str, Any]]
) -> bool:
    for key, expected in const:
        if not _property_value_ok(graph.property(obj, key), expected):
            return False
    return True


def _assemble(
    table: BindingTable,
    columns: Tuple[str, ...],
    names: List[str],
    out_index: List[int],
    out_cols: Dict[str, List[Any]],
) -> BindingTable:
    """Build an extension result: gather the input columns through the
    emitted row indices and splice in the freshly assigned vectors."""
    in_vars = table.variables
    name_set = set(names)
    variables = list(in_vars)
    data: Dict[str, List[Any]] = {}
    for var in in_vars:
        if var in name_set:
            data[var] = out_cols[var]
        else:
            vector = table.column_values(var)
            data[var] = [vector[i] for i in out_index]
    for name in names:
        if name not in data:
            variables.append(name)
            data[name] = out_cols[name]
    return BindingTable.from_columns(
        columns, variables, data, len(out_index), dedup=True
    )


class _BindUnroller:
    """Columnar counterpart of :func:`_unroll_property_binds`.

    Produces, for one graph object and one partial assignment dict, the
    list of final assignment dicts after unrolling every multi-valued
    property bind — memoizing the per-object sorted value lists.
    """

    def __init__(
        self, graph: PathPropertyGraph, binds: Tuple[Tuple[str, str], ...]
    ) -> None:
        self._graph = graph
        self._binds = binds
        self._values: Dict[Tuple[ObjectId, str], List[Any]] = {}

    def _sorted_values(self, obj: ObjectId, key: str) -> List[Any]:
        memo_key = (obj, key)
        values = self._values.get(memo_key)
        if values is None:
            values = sorted(
                self._graph.property(obj, key),
                key=lambda v: (str(type(v)), str(v)),
            )
            self._values[memo_key] = values
        return values

    def unroll(self, obj: ObjectId, assignment: Dict[str, Any]) -> List[Dict[str, Any]]:
        if not self._binds:
            return [assignment]
        combos = [assignment]
        for key, bind_var in self._binds:
            values = self._sorted_values(obj, key)
            next_combos: List[Dict[str, Any]] = []
            for current in combos:
                existing = current.get(bind_var, ABSENT)
                if existing is not ABSENT:
                    if existing in values:
                        next_combos.append(current)
                else:
                    for value in values:
                        extended = dict(current)
                        extended[bind_var] = value
                        next_combos.append(extended)
            combos = next_combos
            if not combos:
                break
        return combos


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------

class NodeAtom:
    """A node pattern bound to a variable (named or hidden)."""

    kind = "node"

    def __init__(self, pattern: ast.NodePattern, var: str) -> None:
        if pattern.copy_of is not None:
            raise SemanticError("copy patterns (=x) are CONSTRUCT-only")
        self.pattern = pattern
        self.var = var

    def binds(self) -> FrozenSet[str]:
        return frozenset(
            {self.var, *(v for _, v in self.pattern.prop_binds)}
        )

    def requires(self) -> FrozenSet[str]:
        return frozenset()

    def extend(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
    ) -> BindingTable:
        pattern = self.pattern
        out_rows: List[Binding] = []
        candidate_cache: Optional[List[ObjectId]] = None
        for row in table:
            if self.var in row:
                candidates = [row[self.var]]
            else:
                if candidate_cache is None:
                    candidate_cache = _label_candidates(
                        graph.nodes, pattern.labels, graph.nodes_with_label
                    )
                candidates = candidate_cache
            for node in candidates:
                if node not in graph.nodes:
                    continue
                if not _satisfies_labels(graph.labels(node), pattern.labels):
                    continue
                if not _property_tests_pass(graph, node, pattern.prop_tests, ev, row):
                    continue
                base = row if self.var in row else row.extend(self.var, node)
                out_rows.extend(
                    _unroll_property_binds(graph, node, pattern.prop_binds, base)
                )
        columns = tuple(table.columns) + tuple(self.binds())
        return BindingTable(columns, out_rows)

    def extend_columnar(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
        probe_filters=None,
    ) -> BindingTable:
        """Columnar expansion: candidates resolved once, output built as
        vectors. Emission order matches :meth:`extend` exactly.

        ``probe_filters`` (var -> object predicate) carries WHERE
        conjuncts pushed down to this atom: candidates failing the
        predicate are dropped before any row materializes.
        """
        pattern = self.pattern
        var = self.var
        probe = (probe_filters or {}).get(var)
        const_tests, dyn_tests = _split_prop_tests(pattern.prop_tests, ev)
        unroller = _BindUnroller(graph, pattern.prop_binds)
        names = list(
            dict.fromkeys([var, *(v for _, v in pattern.prop_binds)])
        )
        nrows = len(table)
        name_vectors = {
            name: table.column_values(name) for name in names
        }
        var_vector = name_vectors[var]
        dyn_rows = table.rows if dyn_tests else None

        candidate_cache: Optional[List[ObjectId]] = None
        bound_ok: Dict[ObjectId, bool] = {}
        out_index: List[int] = []
        out_cols: Dict[str, List[Any]] = {name: [] for name in names}

        for i in range(nrows):
            bound = var_vector[i] if var_vector is not None else ABSENT
            if bound is not ABSENT:
                ok = bound_ok.get(bound)
                if ok is None:
                    ok = (
                        bound in graph.nodes
                        and _satisfies_labels(graph.labels(bound), pattern.labels)
                        and _const_tests_pass(graph, bound, const_tests)
                        and (probe is None or probe(bound))
                    )
                    bound_ok[bound] = ok
                candidates: Iterable[ObjectId] = (bound,) if ok else ()
            else:
                if candidate_cache is None:
                    candidate_cache = [
                        node
                        for node in _label_candidates(
                            graph.nodes, pattern.labels, graph.nodes_with_label
                        )
                        if _const_tests_pass(graph, node, const_tests)
                        and (probe is None or probe(node))
                    ]
                candidates = candidate_cache
            for node in candidates:
                if dyn_tests and not _property_tests_pass(
                    graph, node, tuple(dyn_tests), ev, dyn_rows[i]
                ):
                    continue
                base = {name: ABSENT for name in names}
                for name in names:
                    vector = name_vectors[name]
                    if vector is not None:
                        base[name] = vector[i]
                if base[var] is ABSENT:
                    base[var] = node
                for combo in unroller.unroll(node, base):
                    out_index.append(i)
                    for name in names:
                        out_cols[name].append(combo[name])
        columns = tuple(table.columns) + tuple(self.binds())
        return _assemble(table, columns, names, out_index, out_cols)


class EdgeAtom:
    """An edge pattern between two node variables."""

    kind = "edge"

    def __init__(
        self, pattern: ast.EdgePattern, src_var: str, dst_var: str, var: Optional[str]
    ) -> None:
        if pattern.copy_of is not None:
            raise SemanticError("copy patterns -[=y]- are CONSTRUCT-only")
        self.pattern = pattern
        self.src_var = src_var
        self.dst_var = dst_var
        self.var = var  # None = anonymous (existential, not bound)

    def binds(self) -> FrozenSet[str]:
        names = {self.src_var, self.dst_var}
        if self.var:
            names.add(self.var)
        names.update(v for _, v in self.pattern.prop_binds)
        return frozenset(names)

    def requires(self) -> FrozenSet[str]:
        return frozenset()

    def _orientations(self) -> List[Tuple[str, str]]:
        if self.pattern.direction == ast.OUT:
            return [(self.src_var, self.dst_var)]
        if self.pattern.direction == ast.IN:
            return [(self.dst_var, self.src_var)]
        return [(self.src_var, self.dst_var), (self.dst_var, self.src_var)]

    def extend(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
    ) -> BindingTable:
        pattern = self.pattern
        out_rows: List[Binding] = []
        scan_cache: Optional[List[ObjectId]] = None
        for row in table:
            for from_var, to_var in self._orientations():
                if self.var and self.var in row:
                    candidates: Iterable[ObjectId] = [row[self.var]]
                elif from_var in row:
                    source = row[from_var]
                    candidates = graph.out_edges(source) if source in graph.nodes else ()
                elif to_var in row:
                    target = row[to_var]
                    candidates = graph.in_edges(target) if target in graph.nodes else ()
                else:
                    if scan_cache is None:
                        scan_cache = _label_candidates(
                            graph.edges, pattern.labels, graph.edges_with_label
                        )
                    candidates = scan_cache
                for edge in _sorted_ids(candidates):
                    if edge not in graph.edges:
                        continue
                    if not _satisfies_labels(graph.labels(edge), pattern.labels):
                        continue
                    src, dst = graph.endpoints(edge)
                    # A self-loop pattern (n)-[e]->(n) collapses both
                    # endpoint variables into one name; when that name is
                    # unbound, binding the source would silently satisfy
                    # the target too, so the equality must be explicit.
                    if from_var == to_var and src != dst:
                        continue
                    if from_var in row and row[from_var] != src:
                        continue
                    if to_var in row and row[to_var] != dst:
                        continue
                    if not _property_tests_pass(
                        graph, edge, pattern.prop_tests, ev, row
                    ):
                        continue
                    extended = row
                    if from_var not in extended:
                        extended = extended.extend(from_var, src)
                    if to_var not in extended:
                        extended = extended.extend(to_var, dst)
                    if self.var and self.var not in extended:
                        extended = extended.extend(self.var, edge)
                    out_rows.extend(
                        _unroll_property_binds(
                            graph, edge, pattern.prop_binds, extended
                        )
                    )
        columns = tuple(table.columns) + tuple(self.binds())
        return BindingTable(columns, out_rows)

    def extend_columnar(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
        probe_filters=None,
    ) -> BindingTable:
        """Hash-join expansion against label-bucketed adjacency lists.

        Bound endpoints probe the graph's per-label adjacency indexes
        (build side) instead of re-sorting and re-filtering the raw edge
        lists per row; per-edge admissibility (labels + constant property
        tests) is memoized across rows. Emission order matches
        :meth:`extend` exactly, so both executors produce identical
        tables — rows included, order included.

        ``probe_filters`` (var -> object predicate) carries pushed-down
        WHERE conjuncts: predicates on the edge variable fold into the
        memoized admissibility check, endpoint predicates drop a
        candidate edge right after its endpoints resolve — in both cases
        before the row materializes.
        """
        pattern = self.pattern
        var = self.var
        probe_filters = probe_filters or {}
        edge_probe = probe_filters.get(var) if var else None
        const_tests, dyn_tests = _split_prop_tests(pattern.prop_tests, ev)
        unroller = _BindUnroller(graph, pattern.prop_binds)
        names = list(
            dict.fromkeys(
                [
                    self.src_var,
                    self.dst_var,
                    *((var,) if var else ()),
                    *(v for _, v in pattern.prop_binds),
                ]
            )
        )
        nrows = len(table)
        name_vectors = {name: table.column_values(name) for name in names}
        var_vector = name_vectors.get(var) if var else None
        dyn_rows = table.rows if dyn_tests else None

        # Adjacency build side: bucket by the first single-label group if
        # there is one (the common case); residual label groups and
        # constant property tests are folded into the memoized per-edge
        # admissibility check.
        labels = pattern.labels
        bucket = labels[0][0] if labels and len(labels[0]) == 1 else None
        out_adj = graph.out_adjacency(bucket)
        in_adj = graph.in_adjacency(bucket)
        edge_ok: Dict[ObjectId, bool] = {}
        rho = graph.endpoints
        scan_cache: Optional[List[ObjectId]] = None
        orientations = [
            (from_var, to_var, probe_filters.get(from_var),
             probe_filters.get(to_var))
            for from_var, to_var in self._orientations()
        ]

        out_index: List[int] = []
        out_cols: Dict[str, List[Any]] = {name: [] for name in names}

        for i in range(nrows):
            for from_var, to_var, from_probe, to_probe in orientations:
                from_vec = name_vectors[from_var]
                to_vec = name_vectors[to_var]
                fv = from_vec[i] if from_vec is not None else ABSENT
                tv = to_vec[i] if to_vec is not None else ABSENT
                bound_edge = var_vector[i] if var_vector is not None else ABSENT
                if bound_edge is not ABSENT:
                    candidates: Iterable[ObjectId] = (bound_edge,)
                elif fv is not ABSENT:
                    candidates = out_adj.get(fv, ())
                elif tv is not ABSENT:
                    candidates = in_adj.get(tv, ())
                else:
                    if scan_cache is None:
                        scan_cache = _label_candidates(
                            graph.edges, labels, graph.edges_with_label
                        )
                    candidates = scan_cache
                for edge in candidates:
                    ok = edge_ok.get(edge)
                    if ok is None:
                        ok = (
                            edge in graph.edges
                            and _satisfies_labels(graph.labels(edge), labels)
                            and _const_tests_pass(graph, edge, const_tests)
                            and (edge_probe is None or edge_probe(edge))
                        )
                        edge_ok[edge] = ok
                    if not ok:
                        continue
                    src, dst = rho(edge)
                    if from_var == to_var and src != dst:
                        continue  # self-loop pattern: endpoints must agree
                    if fv is not ABSENT and fv != src:
                        continue
                    if tv is not ABSENT and tv != dst:
                        continue
                    if from_probe is not None and not from_probe(src):
                        continue
                    if to_probe is not None and not to_probe(dst):
                        continue
                    if dyn_tests and not _property_tests_pass(
                        graph, edge, tuple(dyn_tests), ev, dyn_rows[i]
                    ):
                        continue
                    base = {}
                    for name in names:
                        vector = name_vectors[name]
                        base[name] = vector[i] if vector is not None else ABSENT
                    # Mirror the reference's sequential extends (guarded
                    # so an already-assigned name, e.g. a self-loop's
                    # shared endpoint variable, is never overwritten).
                    if base[from_var] is ABSENT:
                        base[from_var] = src
                    if base[to_var] is ABSENT:
                        base[to_var] = dst
                    if var and base[var] is ABSENT:
                        base[var] = edge
                    for combo in unroller.unroll(edge, base):
                        out_index.append(i)
                        for name in names:
                            out_cols[name].append(combo[name])
        columns = tuple(table.columns) + tuple(self.binds())
        return _assemble(table, columns, names, out_index, out_cols)


class PathAtom:
    """A path pattern between two node variables (Appendix A.2)."""

    kind = "path"

    def __init__(
        self, pattern: ast.PathPatternElem, src_var: str, dst_var: str
    ) -> None:
        self.pattern = pattern
        self.src_var = src_var
        self.dst_var = dst_var

    @property
    def from_var(self) -> str:
        return self.dst_var if self.pattern.direction == ast.IN else self.src_var

    @property
    def to_var(self) -> str:
        return self.src_var if self.pattern.direction == ast.IN else self.dst_var

    def binds(self) -> FrozenSet[str]:
        names = {self.src_var, self.dst_var}
        if self.pattern.var:
            names.add(self.pattern.var)
        if self.pattern.cost_var:
            names.add(self.pattern.cost_var)
        return frozenset(names)

    def requires(self) -> FrozenSet[str]:
        return frozenset()

    # ------------------------------------------------------------------
    def extend(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
        ctx: EvalContext,
    ) -> BindingTable:
        if self.pattern.direction == ast.UNDIRECTED:
            raise SemanticError("path patterns must be directed (-/ /-> or <-/ /-)")
        if self.pattern.stored:
            return self._extend_stored(table, graph, ev)
        return self._extend_computed(table, graph, ev, ctx)

    # -- stored paths ------------------------------------------------------
    def _extend_stored(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
    ) -> BindingTable:
        pattern = self.pattern
        candidates = _label_candidates(
            graph.paths, pattern.labels, graph.paths_with_label
        )
        out_rows: List[Binding] = []
        for row in table:
            for pid in candidates:
                sequence = graph.path_sequence(pid)
                start, end = sequence[0], sequence[-1]
                if self.from_var == self.to_var and start != end:
                    continue  # self-loop pattern: endpoints must agree
                if self.from_var in row and row[self.from_var] != start:
                    continue
                if self.to_var in row and row[self.to_var] != end:
                    continue
                if pattern.var and pattern.var in row and row[pattern.var] != pid:
                    continue
                extended = row
                if self.from_var not in extended:
                    extended = extended.extend(self.from_var, start)
                if self.to_var not in extended:
                    extended = extended.extend(self.to_var, end)
                if pattern.var and pattern.var not in extended:
                    extended = extended.extend(pattern.var, pid)
                if pattern.cost_var:
                    extended = extended.extend(
                        pattern.cost_var, len(sequence) // 2
                    )
                out_rows.append(extended)
        columns = tuple(table.columns) + tuple(self.binds())
        return BindingTable(columns, out_rows)

    # -- computed paths ------------------------------------------------------
    def _finder(
        self, graph: PathPropertyGraph, ctx: EvalContext, naive: bool = False
    ) -> PathFinder:
        nfa = _nfa_for(self.pattern.regex)
        views = {
            name: ctx.segments_for(name, graph)
            for name in regex_view_names(self.pattern.regex)
        }
        return PathFinder(graph, nfa, views, naive=naive)

    def explain_strategy(self) -> str:
        """The search strategy EXPLAIN reports for this atom."""
        if self.pattern.stored:
            return "stored"
        return "bfs" if _nfa_for(self.pattern.regex).unit_cost else "dijkstra"

    def _extend_computed(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
        ctx: EvalContext,
    ) -> BindingTable:
        pattern = self.pattern
        finder = self._finder(graph, ctx, naive=True)
        from_var, to_var = self.from_var, self.to_var
        out_rows: List[Binding] = []

        # Group rows by the source endpoint so each distinct source runs a
        # single single-source search.
        rows_by_source: Dict[Any, List[Binding]] = defaultdict(list)
        unbound_rows: List[Binding] = []
        for row in table:
            if from_var in row:
                rows_by_source[row[from_var]].append(row)
            else:
                unbound_rows.append(row)
        if unbound_rows:
            # Source endpoint entirely unconstrained: try every node.
            for row in unbound_rows:
                for node in _sorted_ids(graph.nodes):
                    rows_by_source[node].append(row.extend(from_var, node))

        for source in sorted(rows_by_source, key=str):
            rows = rows_by_source[source]
            if source not in graph.nodes:
                continue
            if pattern.mode == "reach":
                reachable = finder.reachable_from(source)
                for row in rows:
                    if to_var in row:
                        if row[to_var] in reachable:
                            out_rows.append(row)
                    else:
                        for target in _sorted_ids(reachable):
                            out_rows.append(row.extend(to_var, target))
            elif pattern.mode == "all":
                for row in rows:
                    targets = (
                        [row[to_var]]
                        if to_var in row
                        else _sorted_ids(graph.nodes)
                    )
                    for target in targets:
                        nodes, edges = finder.all_paths_projection(source, target)
                        if not nodes:
                            continue
                        handle = AllPathsHandle(
                            source, target, tuple(_sorted_ids(nodes)),
                            tuple(_sorted_ids(edges)),
                        )
                        extended = row
                        if to_var not in extended:
                            extended = extended.extend(to_var, target)
                        if pattern.var:
                            extended = extended.extend(pattern.var, handle)
                        out_rows.append(extended)
            elif pattern.count == 1:
                bound_targets = {
                    row[to_var] for row in rows if to_var in row
                }
                all_targets_bound = all(to_var in row for row in rows)
                walks = finder.shortest_from(
                    source, set(bound_targets) if all_targets_bound else None
                )
                for row in rows:
                    if to_var in row:
                        walk = walks.get(row[to_var])
                        if walk is not None:
                            out_rows.append(self._bind_walk(row, walk))
                    else:
                        for target in sorted(walks, key=str):
                            extended = row.extend(to_var, target)
                            out_rows.append(
                                self._bind_walk(extended, walks[target])
                            )
            else:
                for row in rows:
                    if to_var in row:
                        targets = [row[to_var]]
                    else:
                        targets = sorted(
                            finder.shortest_from(source), key=str
                        )
                    for target in targets:
                        for walk in finder.k_shortest(
                            source, target, pattern.count
                        ):
                            extended = row
                            if to_var not in extended:
                                extended = extended.extend(to_var, target)
                            out_rows.append(self._bind_walk(extended, walk))
        columns = tuple(table.columns) + tuple(self.binds())
        return BindingTable(columns, out_rows)

    def _bind_walk(self, row: Binding, walk: Walk) -> Binding:
        pattern = self.pattern
        if pattern.var and pattern.var not in row:
            row = row.extend(pattern.var, walk)
        if pattern.cost_var and pattern.cost_var not in row:
            row = row.extend(pattern.cost_var, _coerce_cost(walk.cost))
        return row

    # -- columnar expansion --------------------------------------------------
    def extend_columnar(
        self,
        table: BindingTable,
        graph: PathPropertyGraph,
        ev: ExpressionEvaluator,
        ctx: EvalContext,
    ) -> BindingTable:
        """Batched columnar path expansion (mirrors :meth:`extend` exactly).

        The incoming binding vectors are grouped by source id; each group
        runs one batched product-graph search
        (:meth:`~repro.paths.product.PathFinder.shortest_multi` and
        friends share a memoized expansion structure across all groups),
        and result vectors — target, walk handle, cost — are emitted
        directly. Emission order matches the row-at-a-time reference
        executor row for row, so both executors produce identical tables.
        Stored-path patterns delegate to the shared scan.
        """
        if self.pattern.direction == ast.UNDIRECTED:
            raise SemanticError("path patterns must be directed (-/ /-> or <-/ /-)")
        if self.pattern.stored:
            return self._extend_stored(table, graph, ev)
        pattern = self.pattern
        finder = self._finder(graph, ctx)
        from_var, to_var = self.from_var, self.to_var
        names = list(
            dict.fromkeys(
                [
                    self.src_var,
                    self.dst_var,
                    *((pattern.var,) if pattern.var else ()),
                    *((pattern.cost_var,) if pattern.cost_var else ()),
                ]
            )
        )
        nrows = len(table)
        name_vectors = {name: table.column_values(name) for name in names}

        def value_at(name: str, index: int):
            vector = name_vectors.get(name)
            if vector is None:
                vector = table.column_values(name)
            return vector[index] if vector is not None else ABSENT

        # Group row indices by the source endpoint; rows with an unbound
        # source try every node (mirroring the reference's two phases:
        # bound rows first, then unbound rows, per bucket).
        groups: Dict[Any, List[int]] = defaultdict(list)
        from_vec = name_vectors.get(from_var)
        unbound_rows: List[int] = []
        for i in range(nrows):
            value = from_vec[i] if from_vec is not None else ABSENT
            if value is not ABSENT:
                groups[value].append(i)
            else:
                unbound_rows.append(i)
        if unbound_rows:
            all_nodes = _sorted_ids(graph.nodes)
            for i in unbound_rows:
                for node in all_nodes:
                    groups[node].append(i)

        out_index: List[int] = []
        out_cols: Dict[str, List[Any]] = {name: [] for name in names}

        def emit(index: int, assigned: Dict[str, Any]) -> None:
            out_index.append(index)
            for name in names:
                if name in assigned:
                    out_cols[name].append(assigned[name])
                else:
                    vector = name_vectors[name]
                    out_cols[name].append(vector[index] if vector is not None else ABSENT)

        def base_assignment(index: int, source: Any) -> Dict[str, Any]:
            if value_at(from_var, index) is ABSENT:
                return {from_var: source}
            return {}

        def target_at(index: int, assigned: Dict[str, Any]) -> Any:
            # A self-loop pattern shares one variable between endpoints;
            # once base_assignment pins it to the source, the target is
            # pinned too (the reference executor gets this for free from
            # row.extend, so the table vector alone is not the truth).
            if to_var in assigned:
                return assigned[to_var]
            return value_at(to_var, index)

        sources = [s for s in sorted(groups, key=str) if s in graph.nodes]

        if pattern.mode == "reach":
            from .parallel import parallel_reachable_multi

            reachable_by_source = parallel_reachable_multi(
                ctx, graph, pattern, sources
            )
            if reachable_by_source is None:
                reachable_by_source = finder.reachable_multi(sources)
            for source in sources:
                reachable = reachable_by_source[source]
                for i in groups[source]:
                    assigned = base_assignment(i, source)
                    bound_target = target_at(i, assigned)
                    if bound_target is not ABSENT:
                        if bound_target in reachable:
                            emit(i, assigned)
                    else:
                        for target in _sorted_ids(reachable):
                            emit(i, {**assigned, to_var: target})
        elif pattern.mode == "all":
            for source in sources:
                for i in groups[source]:
                    assigned = base_assignment(i, source)
                    bound_target = target_at(i, assigned)
                    targets = (
                        [bound_target]
                        if bound_target is not ABSENT
                        else _sorted_ids(graph.nodes)
                    )
                    for target in targets:
                        nodes, edges = finder.all_paths_projection(source, target)
                        if not nodes:
                            continue
                        handle = AllPathsHandle(
                            source,
                            target,
                            tuple(_sorted_ids(nodes)),
                            tuple(_sorted_ids(edges)),
                        )
                        extended = dict(assigned)
                        if bound_target is ABSENT:
                            extended[to_var] = target
                        if pattern.var:
                            extended[pattern.var] = handle
                        emit(i, extended)
        elif pattern.count == 1:
            # One batched multi-source search: per-source target sets when
            # every row of the group pins the target, the full reachable
            # set otherwise.
            targets_map: Dict[Any, Optional[Set[Any]]] = {}
            for source in sources:
                bound: Set[Any] = set()
                all_bound = True
                for i in groups[source]:
                    value = value_at(to_var, i)
                    if value is ABSENT:
                        all_bound = False
                        break
                    bound.add(value)
                targets_map[source] = bound if all_bound else None
            from .parallel import parallel_shortest_multi

            walks_by_source = parallel_shortest_multi(
                ctx, graph, pattern, sources, targets_map
            )
            if walks_by_source is None:
                walks_by_source = finder.shortest_multi(sources, targets_map)
            for source in sources:
                walks = walks_by_source[source]
                for i in groups[source]:
                    assigned = base_assignment(i, source)
                    bound_target = target_at(i, assigned)
                    if bound_target is not ABSENT:
                        walk = walks.get(bound_target)
                        if walk is not None:
                            emit(i, self._walk_assignment(i, assigned, walk, value_at))
                    else:
                        for target in sorted(walks, key=str):
                            extended = {**assigned, to_var: target}
                            emit(i, self._walk_assignment(i, extended, walks[target], value_at))
        else:
            # k SHORTEST: hoist the target enumeration and the per-target
            # k-walk scans out of the row loop — every row of a source
            # group sees the same walks, so each search runs once per
            # (source, target) instead of once per row.
            for source in sources:
                shared_targets: Optional[List[Any]] = None
                walks_cache: Dict[Any, List[Walk]] = {}
                for i in groups[source]:
                    assigned = base_assignment(i, source)
                    bound_target = target_at(i, assigned)
                    if bound_target is not ABSENT:
                        targets = [bound_target]
                    elif shared_targets is not None:
                        targets = shared_targets
                    else:
                        shared_targets = sorted(finder.conforming_targets(source), key=str)
                        targets = shared_targets
                    for target in targets:
                        walks = walks_cache.get(target)
                        if walks is None:
                            walks = finder.k_shortest(source, target, pattern.count)
                            walks_cache[target] = walks
                        for walk in walks:
                            extended = dict(assigned)
                            if bound_target is ABSENT:
                                extended[to_var] = target
                            emit(i, self._walk_assignment(i, extended, walk, value_at))
        columns = tuple(table.columns) + tuple(self.binds())
        return _assemble(table, columns, names, out_index, out_cols)

    def _walk_assignment(
        self, index: int, assigned: Dict[str, Any], walk: Walk, value_at
    ) -> Dict[str, Any]:
        """Columnar mirror of :meth:`_bind_walk`'s bind-if-absent rules."""
        pattern = self.pattern
        if pattern.var and pattern.var not in assigned:
            if value_at(pattern.var, index) is ABSENT:
                assigned[pattern.var] = walk
        if pattern.cost_var and pattern.cost_var not in assigned:
            if value_at(pattern.cost_var, index) is ABSENT:
                assigned[pattern.cost_var] = _coerce_cost(walk.cost)
        return assigned


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _coerce_cost(cost: float) -> Any:
    """Integral walk costs bind as ints (hop counts print as 2, not 2.0)."""
    if isinstance(cost, float) and cost.is_integer():
        return int(cost)
    return cost


def _property_tests_pass(
    graph: PathPropertyGraph,
    obj: ObjectId,
    tests: Tuple[Tuple[str, ast.Expr], ...],
    ev: ExpressionEvaluator,
    row: Binding,
) -> bool:
    for key, expr in tests:
        expected = ev.evaluate(expr, row)
        actual = graph.property(obj, key)
        if not (gcore_equals(actual, expected) or
                (not isinstance(expected, frozenset) and expected in actual)):
            return False
    return True


def _unroll_property_binds(
    graph: PathPropertyGraph,
    obj: ObjectId,
    binds: Tuple[Tuple[str, str], ...],
    row: Binding,
) -> List[Binding]:
    """Unroll multi-valued properties into per-value bindings (Section 3)."""
    rows = [row]
    for key, bind_var in binds:
        values = graph.property(obj, key)
        next_rows: List[Binding] = []
        for current in rows:
            if bind_var in current:
                if current[bind_var] in values:
                    next_rows.append(current)
            else:
                for value in sorted(values, key=lambda v: (str(type(v)), str(v))):
                    next_rows.append(current.extend(bind_var, value))
        rows = next_rows
        if not rows:
            break
    return rows


# ---------------------------------------------------------------------------
# Chain decomposition
# ---------------------------------------------------------------------------

class _AnonNamer:
    def __init__(self) -> None:
        self._counter = itertools.count()

    def fresh(self) -> str:
        return f"{ANON_PREFIX}{next(self._counter)}"


def decompose_chain(
    chain: ast.Chain,
    namer: _AnonNamer,
    name_anonymous_edges: bool = False,
) -> List[object]:
    """Split a chain into Node/Edge/Path atoms with resolved endpoints."""
    atoms: List[object] = []
    node_vars: List[str] = []
    for element in chain.nodes():
        var = element.var or namer.fresh()
        node_vars.append(var)
        atoms.append(NodeAtom(element, var))
    for index, connector in enumerate(chain.connectors()):
        src_var = node_vars[index]
        dst_var = node_vars[index + 1]
        if isinstance(connector, ast.EdgePattern):
            var = connector.var
            if var is None and name_anonymous_edges:
                var = namer.fresh()
            atoms.append(EdgeAtom(connector, src_var, dst_var, var))
        elif isinstance(connector, ast.PathPatternElem):
            atoms.append(PathAtom(connector, src_var, dst_var))
        else:  # pragma: no cover - parser guarantees the alternation
            raise SemanticError(f"unexpected chain element: {connector!r}")
    return atoms


# ---------------------------------------------------------------------------
# Block and clause evaluation
# ---------------------------------------------------------------------------

def _resolve_location(
    location: ast.PatternLocation,
    ctx: EvalContext,
    block_default: Optional[PathPropertyGraph] = None,
) -> PathPropertyGraph:
    if location.on is None:
        if block_default is not None:
            return block_default
        if ctx.current_graph is not None:
            return ctx.current_graph
        return ctx.default_graph()
    if isinstance(location.on, str):
        return ctx.resolve_graph(location.on)
    from .query import evaluate_query  # local import: cycle

    result = evaluate_query(location.on, ctx.child())
    if not isinstance(result, PathPropertyGraph):
        raise EvaluationError("ON (subquery) must produce a graph")
    return result


def _block_default_graph(
    block: ast.MatchBlock, ctx: EvalContext
) -> Optional[PathPropertyGraph]:
    """The graph ON-less patterns of *block* fall back to.

    The paper writes ``MATCH p1, p2 ON g`` with the trailing ON scoping
    the whole pattern list (final query of Section 3), so patterns
    without their own ON inherit the block's first specified location.
    """
    for location in block.patterns:
        if location.on is not None:
            return _resolve_location(location, ctx)
    return None


def _ordered_atoms(
    atoms: List[object],
    table: BindingTable,
    location: ast.PatternLocation,
    graph: PathPropertyGraph,
    ctx: EvalContext,
    pushed_props=None,
) -> List[object]:
    """Plan a pattern, consulting the prepared-query plan cache if any.

    Orderings are memoized per (pattern site, bound columns, graph) —
    pattern evaluation order never affects the result (the semantics is a
    join), so a cached permutation is always safe to replay against the
    identical site and graph. ``pushed_props`` feeds the selectivity of
    pushed-down WHERE conjuncts into the cardinality estimates.
    """
    bound = set(table.columns)
    if ctx.naive_planner:
        return order_atoms(atoms, bound, naive=True)
    stats = graph.statistics() if ctx.use_cost_planner else None
    cache = ctx.plan_cache
    if cache is None:
        return order_atoms(
            atoms, bound, stats=stats, pushed_props=pushed_props
        )
    columns = tuple(table.columns)
    memoized = cache.lookup(location, columns, graph)
    if memoized is not None and len(memoized) == len(atoms):
        return [atoms[i] for i in memoized]
    position = {id(atom): i for i, atom in enumerate(atoms)}
    ordered = order_atoms(atoms, bound, stats=stats, pushed_props=pushed_props)
    cache.store(location, columns, graph, [position[id(a)] for a in ordered])
    return ordered


def _apply_conjuncts(
    conjuncts: List[ast.Expr],
    table: BindingTable,
    ctx: EvalContext,
    compiler: Optional[ExpressionCompiler],
    ev: ExpressionEvaluator,
) -> BindingTable:
    """Filter *table* by a conjunction of WHERE conjuncts.

    Conjuncts apply in order over a narrowing row-index set (the batched
    mirror of the oracle's short-circuiting AND). With a *compiler* each
    conjunct runs as one compiled kernel sharing a
    :class:`KernelContext` (property/label lookups memoize across the
    whole conjunction); without one (the interpreted-expressions
    ablation) conjuncts evaluate per row through the oracle.
    """
    if not conjuncts or not table:
        return table
    if compiler is not None:
        from .parallel import parallel_filter

        rows = parallel_filter(conjuncts, table, ctx)
        if rows is None:
            rows = compiled_filter_rows(table, ctx, conjuncts, compiler)
    else:
        rows = list(range(len(table)))
        views = table.rows
        for conjunct in conjuncts:
            if not rows:
                break
            rows = [
                i for i in rows if ev.evaluate_predicate(conjunct, views[i])
            ]
    if len(rows) == len(table):
        return table
    return table.select_rows(rows)


def run_atom_sequence(
    atoms: List[object],
    table: BindingTable,
    graph: PathPropertyGraph,
    ctx: EvalContext,
    ev: ExpressionEvaluator,
    compiler: Optional[ExpressionCompiler],
    plan: Optional[PushdownPlan],
    bound_by_atoms: Set[str],
) -> BindingTable:
    """Run a planned atom sequence against *table* (one block location).

    The shared inner loop of block evaluation: probe-predicate pushdown,
    atom expansion on the configured executor, then any newly-total
    pushed conjuncts. Mutates *plan* (conjuncts are consumed as taken)
    and *bound_by_atoms* in place. Morsel workers
    (:mod:`repro.eval.parallel`) run exactly this function over their
    row ranges, which is what makes parallel block tails bit-identical
    to serial evaluation.
    """
    columnar = ctx.config.executor == "columnar"
    for atom in atoms:
        probe = None
        if plan is not None and not isinstance(atom, PathAtom):
            taken = plan.take_probe(atom, bound_by_atoms)
            if taken:
                probe = plan.probe_predicates(taken, ev)
        if isinstance(atom, PathAtom):
            # The path engine is its own config axis (historically it
            # rode with the executor; the legacy flag setters keep
            # that coupling, the config API can flip it alone).
            if ctx.config.paths == "batched":
                table = atom.extend_columnar(table, graph, ev, ctx)
            else:
                table = atom.extend(table, graph, ev, ctx)
        elif columnar:
            table = atom.extend_columnar(
                table, graph, ev, probe_filters=probe
            )
        else:
            table = atom.extend(table, graph, ev)
        bound_by_atoms |= atom.binds()
        if plan is not None and table:
            post = plan.take_post(bound_by_atoms)
            if post:
                table = _apply_conjuncts(
                    [c.expr for c in post], table, ctx, compiler, ev
                )
        if not table:
            break
    return table


def finish_block_where(
    table: BindingTable,
    plan: Optional[PushdownPlan],
    where: Optional[ast.Expr],
    ctx: EvalContext,
    compiler: Optional[ExpressionCompiler],
    ev: ExpressionEvaluator,
) -> BindingTable:
    """Apply the block-end residual WHERE (whatever pushdown left over)."""
    if where is None or not table:
        return table
    if plan is not None:
        return _apply_conjuncts(plan.remaining(), table, ctx, compiler, ev)
    if compiler is not None:
        return _apply_conjuncts(
            split_conjuncts(where), table, ctx, compiler, ev
        )
    return table.filter(lambda row: ev.evaluate_predicate(where, row))


def evaluate_block(
    block: ast.MatchBlock,
    ctx: EvalContext,
    seed: Optional[BindingTable] = None,
    keep_anonymous: bool = False,
    name_anonymous_edges: bool = False,
) -> BindingTable:
    """Evaluate one pattern block (the MATCH body or an OPTIONAL block)."""
    from .parallel import MIN_PARALLEL_ROWS, parallel_block_tail

    table = seed if seed is not None else BindingTable.unit()
    namer = _AnonNamer()
    ev = ExpressionEvaluator(ctx)
    primary_graph: Optional[PathPropertyGraph] = None
    block_default = _block_default_graph(block, ctx)
    columnar = ctx.config.executor == "columnar"
    vectorized = ctx.use_vectorized()
    compiler = ExpressionCompiler(ctx) if vectorized else None
    # Predicate pushdown: total WHERE conjuncts apply as soon as their
    # variables are bound — single-variable ones right at the candidate
    # probe of the atom binding them — instead of at block end. Pushdown
    # rides with the columnar executor (the planner prices it into its
    # estimates), independent of the expression-engine choice, so the
    # two expression engines see identical plans and produce identical
    # tables — rows, order and columns.
    plan: Optional[PushdownPlan] = None
    pushed_props = None
    if columnar and block.where is not None:
        plan = PushdownPlan(block.where, ctx.params)
        pushed_props = plan.pushed_property_keys() or None
    bound_by_atoms: Set[str] = set()
    # Name resolution is eager for the whole block. Whether a given atom
    # (or a whole later pattern) ever executes depends on the data and
    # the planner's atom order — an empty binding table short-circuits
    # the rest of the block — but an unknown ON graph or path view must
    # raise at every ExecutionConfig lattice point, matching the static
    # analyzer's GC101/GC105 verdicts.
    for location in block.patterns:
        if isinstance(location.on, str):
            ctx.resolve_graph(location.on)
        for element in location.chain.elements:
            if (
                isinstance(element, ast.PathPatternElem)
                and element.regex is not None
            ):
                for view_name in sorted(regex_view_names(element.regex)):
                    ctx.require_path_view(view_name)
    # Morsel dispatch rides on single-location columnar blocks: atoms run
    # serially until the binding table is wide enough to split, then the
    # remaining atoms and the residual WHERE move to the worker pool.
    try_parallel = (
        not ctx.config.serial
        and columnar
        and len(block.patterns) == 1
    )
    where_done = False
    for location in block.patterns:
        graph = _resolve_location(location, ctx, block_default)
        if primary_graph is None:
            primary_graph = graph
            ctx.current_graph = graph
        ctx.touch_graph(graph)
        atoms = decompose_chain(location.chain, namer, name_anonymous_edges)
        ordered = _ordered_atoms(
            atoms, table, location, graph, ctx, pushed_props
        )
        if try_parallel:
            for index in range(len(ordered)):
                if len(table) >= MIN_PARALLEL_ROWS:
                    dispatched = parallel_block_tail(
                        ordered, index, table, graph, ctx, plan,
                        bound_by_atoms, block.where,
                    )
                    if dispatched is not None:
                        table = dispatched
                        where_done = True
                        break
                table = run_atom_sequence(
                    ordered[index : index + 1], table, graph, ctx, ev,
                    compiler, plan, bound_by_atoms,
                )
                if not table:
                    break
        else:
            table = run_atom_sequence(
                ordered, table, graph, ctx, ev, compiler, plan,
                bound_by_atoms,
            )
        if not table:
            break
    if not where_done:
        table = finish_block_where(
            table, plan, block.where, ctx, compiler, ev
        )
    if not keep_anonymous:
        hidden = [c for c in table.columns if c.startswith(ANON_PREFIX)]
        if hidden:
            table = table.drop(hidden)
    return table


def evaluate_match(
    match: Optional[ast.MatchClause],
    ctx: EvalContext,
    seed: Optional[BindingTable] = None,
) -> BindingTable:
    """Evaluate a full MATCH clause: main block then OPTIONAL blocks (A.2)."""
    if match is None:
        return seed if seed is not None else BindingTable.unit()
    analyze_match(match)
    table = evaluate_block(match.block, ctx, seed)
    for optional in match.optionals:
        extended = evaluate_block(optional, ctx, seed=table)
        table = table_left_join(table, extended)
    return table


def match_rows_touching(
    block: ast.MatchBlock,
    ctx: EvalContext,
    node_vars: Iterable[str],
    touched_nodes: Iterable[ObjectId],
) -> BindingTable:
    """The binding rows of *block* that bind a touched node — the
    join-delta primitive of incremental view maintenance.

    For each node variable the block is re-evaluated *seeded* with that
    variable pre-bound to every touched node: the planner sees the
    variable as bound, so the evaluation hash-joins outward from the
    touched objects instead of scanning the graph, and the result is
    exactly the selection sigma_{var in touched}(Omega). The union over
    all node variables (deduplicated — binding tables are sets) is every
    row of the full binding table that binds at least one touched node.
    For delta-eligible blocks (every chain node named, no path atoms;
    see :mod:`repro.eval.maintenance`) this is precisely the set of rows
    a graph delta with the given touched-node closure can have added or
    removed, at a cost proportional to the delta instead of the graph.
    """
    from ..algebra.ops import table_union  # local import: cycle via ops

    seeds = _sorted_ids(touched_nodes)
    result: Optional[BindingTable] = None
    for var in dict.fromkeys(node_vars):
        seed = BindingTable((var,), [Binding({var: node}) for node in seeds])
        table = evaluate_block(block, ctx, seed=seed)
        result = table if result is None else table_union(result, table)
    return result if result is not None else BindingTable.unit()


def chain_matches(chain: ast.Chain, ctx: EvalContext, row: Binding) -> bool:
    """Does *chain* match, given the bindings of *row*? (WHERE predicates.)"""
    variables = set()
    for element in chain.elements:
        var = getattr(element, "var", None)
        if var:
            variables.add(var)
    seed_row = row.project([v for v in variables if v in row])
    seed = BindingTable(tuple(seed_row.domain), [seed_row])
    block = ast.MatchBlock((ast.PatternLocation(chain, None),), None)
    # The block above is rebuilt per row; don't churn the prepared-query
    # plan cache with throwaway pattern sites.
    saved_cache, ctx.plan_cache = ctx.plan_cache, None
    try:
        return bool(evaluate_block(block, ctx, seed=seed))
    finally:
        ctx.plan_cache = saved_cache
