"""Vectorized expression kernels over columnar binding tables.

:class:`ExpressionCompiler` compiles an AST expression once into a
*kernel* — a callable ``(KernelContext, units) -> values`` evaluating the
expression for a whole batch of rows (or, in grouped form, a batch of
GROUP BY groups) directly against a :class:`~repro.algebra.binding.
BindingTable`'s column vectors. This replaces the per-row recursive
dispatch of :class:`~repro.eval.expressions.ExpressionEvaluator` (which
stays as the reference oracle behind ``naive=True`` /
``ctx.vectorized_expressions = False``) on the hot paths: WHERE filters,
SELECT projections and GROUP BY aggregation.

Semantics contract — the kernels must be *observationally identical* to
the oracle (the property tests assert exact table equality):

* ``ABSENT`` mask propagation: an unbound variable evaluates to the
  empty value set, exactly as ``_eval_Var`` does for a partial binding.
* Short-circuit reachability: ``AND``/``OR``/``CASE`` evaluate their
  lazy operands only on the rows the oracle would reach, so an
  expression that raises (arithmetic over a string, say) raises in
  precisely the same row/operand positions under both evaluators.
* Shared scalar semantics: comparisons go through ``gcore_equals`` /
  ``gcore_compare`` (bool/number separation included), arithmetic and
  builtins reuse the oracle's own implementations element-wise, and
  aggregates feed column slices into the same ``collect_values`` /
  ``aggregate_values`` core the oracle uses.

Subexpressions with no columnar form (EXISTS subqueries, pattern
predicates) fall back to the oracle row-by-row inside an otherwise
compiled kernel, so every expression compiles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence

from ..algebra.aggregates import (
    AGGREGATE_NAMES,
    aggregate_values,
    collect_values,
    is_aggregate_name,
)
from ..algebra.binding import ABSENT, BindingTable
from ..algebra.grouping import presence_mask
from ..errors import EvaluationError
from ..lang import ast
from ..model.values import (
    EMPTY_SET,
    as_scalar,
    gcore_compare,
    gcore_equals,
    gcore_in,
    gcore_subset,
    truthy,
)
from ..paths.walk import Walk
from .expressions import ExpressionEvaluator, expr_has_aggregate

__all__ = [
    "ExpressionCompiler",
    "GroupSpec",
    "Kernel",
    "KernelContext",
    "compiled_filter_rows",
]

#: A compiled kernel: evaluates one expression for a batch of units.
#: Scalar kernels take row indices; grouped kernels take GroupSpecs.
Kernel = Callable[["KernelContext", Sequence[Any]], List[Any]]

_MISS = object()


class GroupSpec(NamedTuple):
    """One GROUP BY equivalence class: representative row + members."""

    representative: int
    indices: Sequence[int]


class KernelContext:
    """Per-table evaluation state shared by all kernels of one batch.

    Memoizes label and property lookups per graph object — the same
    object typically appears in many rows of a binding column, so one
    catalog lookup serves the whole batch.
    """

    __slots__ = (
        "table",
        "ctx",
        "maximal_domain",
        "_prop_cache",
        "_label_cache",
        "_maximal_mask",
    )

    def __init__(self, table: BindingTable, ctx, maximal_domain=None) -> None:
        self.table = table
        self.ctx = ctx
        self.maximal_domain = maximal_domain
        self._prop_cache: Dict[Any, Any] = {}
        self._label_cache: Dict[Any, Any] = {}
        self._maximal_mask: Optional[List[bool]] = None

    def lookup_property(self, obj: Any, key: str) -> Any:
        cache_key = (obj, key)
        cached = self._prop_cache.get(cache_key, _MISS)
        if cached is _MISS:
            cached = self.ctx.lookup_property(obj, key)
            self._prop_cache[cache_key] = cached
        return cached

    def lookup_labels(self, obj: Any) -> Any:
        cached = self._label_cache.get(obj, _MISS)
        if cached is _MISS:
            cached = self.ctx.lookup_labels(obj)
            self._label_cache[obj] = cached
        return cached

    def maximal_mask(self) -> List[bool]:
        """Row mask for the COUNT(*) maximality rule (computed once)."""
        if self._maximal_mask is None:
            self._maximal_mask = presence_mask(self.table, self.maximal_domain or ())
        return self._maximal_mask


def compiled_filter_rows(
    table: BindingTable,
    ctx,
    conjuncts: Sequence[ast.Expr],
    compiler: Optional["ExpressionCompiler"] = None,
) -> List[int]:
    """Surviving row indices of *table* under a compiled WHERE conjunction.

    Conjuncts run in order over a narrowing index set — the batched
    mirror of the oracle's short-circuiting AND, so a row never reaches
    a conjunct the oracle would have short-circuited away (error
    semantics included). Both the serial block evaluator and the morsel
    filter workers (:mod:`repro.eval.parallel`) call exactly this
    function, which is why a row-partitioned filter is bit-identical to
    the serial one. Pass *compiler* to reuse kernel caches.
    """
    if compiler is None:
        compiler = ExpressionCompiler(ctx)
    rows = list(range(len(table)))
    kctx = KernelContext(table, ctx)
    for conjunct in conjuncts:
        if not rows:
            break
        values = compiler.compile(conjunct)(kctx, rows)
        rows = [i for i, value in zip(rows, values) if truthy(value)]
    return rows


class ExpressionCompiler:
    """Compiles AST expressions to columnar kernels for one context."""

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self._oracle = ExpressionEvaluator(ctx)
        self._cache: Dict[int, Kernel] = {}

    # ------------------------------------------------------------------
    # Scalar (per-row) compilation
    # ------------------------------------------------------------------
    def compile(self, expr: ast.Expr) -> Kernel:
        """The per-row kernel of *expr* (units are row indices)."""
        cached = self._cache.get(id(expr))
        if cached is None:
            cached = self._compile(expr)
            self._cache[id(expr)] = cached
        return cached

    def _compile(self, expr: ast.Expr) -> Kernel:
        if isinstance(expr, ast.Literal):
            value = expr.value
            return lambda kctx, rows: [value] * len(rows)
        if isinstance(expr, ast.Param):
            return self._param_kernel(expr.name)
        if isinstance(expr, ast.Var):
            return self._var_kernel(expr.name)
        if isinstance(expr, ast.Prop):
            return self._prop_kernel(self.compile(expr.base), expr.key)
        if isinstance(expr, ast.LabelTest):
            return self._label_test_kernel(expr.var, expr.labels)
        if isinstance(expr, ast.Unary):
            return self._unary_kernel(expr.op, self.compile(expr.operand))
        if isinstance(expr, ast.Binary):
            return self._binary_kernel(
                expr.op, self.compile(expr.left), self.compile(expr.right)
            )
        if isinstance(expr, ast.CaseExpr):
            whens = [
                (self.compile(cond), self.compile(value))
                for cond, value in expr.whens
            ]
            default = self.compile(expr.default) if expr.default is not None else None
            return self._case_kernel(whens, default)
        if isinstance(expr, ast.Index):
            return self._index_kernel(self.compile(expr.base), self.compile(expr.index))
        if isinstance(expr, ast.ListLiteral):
            return self._list_kernel([self.compile(i) for i in expr.items])
        if isinstance(expr, ast.FuncCall):
            if expr.star or is_aggregate_name(expr.name):
                # Aggregates are illegal in per-row position; raise the
                # oracle's message (only when a row actually reaches the
                # kernel).
                return self._raising_kernel(
                    f"aggregate {expr.name}(...) outside a grouping context"
                )
            return self._call_kernel(
                expr.name.lower(), [self.compile(a) for a in expr.args]
            )
        return self._fallback(expr)

    # ------------------------------------------------------------------
    # Grouped (per-GROUP-BY-class) compilation
    # ------------------------------------------------------------------
    def compile_grouped(self, expr: ast.Expr) -> Kernel:
        """The per-group kernel of *expr* (units are GroupSpecs).

        Aggregate-free subtrees evaluate on each group's representative
        row (the oracle's rule); aggregate calls slice a once-evaluated
        argument column per group and run the shared aggregation core.
        """
        if not expr_has_aggregate(expr):
            scalar = self.compile(expr)

            def representative(kctx, groups, scalar=scalar):
                return scalar(kctx, [g.representative for g in groups])

            return representative
        if isinstance(expr, ast.FuncCall) and (
            expr.star or is_aggregate_name(expr.name)
        ):
            return self._aggregate_kernel(expr)
        grouped = self.compile_grouped
        if isinstance(expr, ast.Unary):
            return self._unary_kernel(expr.op, grouped(expr.operand))
        if isinstance(expr, ast.Binary):
            return self._binary_kernel(expr.op, grouped(expr.left), grouped(expr.right))
        if isinstance(expr, ast.CaseExpr):
            whens = [(grouped(cond), grouped(value)) for cond, value in expr.whens]
            default = grouped(expr.default) if expr.default is not None else None
            return self._case_kernel(whens, default)
        if isinstance(expr, ast.Index):
            return self._index_kernel(grouped(expr.base), grouped(expr.index))
        if isinstance(expr, ast.ListLiteral):
            return self._list_kernel([grouped(i) for i in expr.items])
        if isinstance(expr, ast.Prop):
            return self._prop_kernel(grouped(expr.base), expr.key)
        if isinstance(expr, ast.FuncCall):
            return self._call_kernel(expr.name.lower(), [grouped(a) for a in expr.args])
        return self._grouped_fallback(expr)

    def _aggregate_kernel(self, expr: ast.FuncCall) -> Kernel:
        name = expr.name.lower()
        if name not in AGGREGATE_NAMES:
            # FOO(*) parses; the oracle rejects it group by group.
            return self._raising_kernel(f"unknown aggregate: {name}")
        if name == "count" and expr.star:

            def count_star(kctx, groups):
                if kctx.maximal_domain is None:
                    return [len(g.indices) for g in groups]
                mask = kctx.maximal_mask()
                return [sum(1 for i in g.indices if mask[i]) for g in groups]

            return count_star
        if not expr.args:
            # SUM(*) and friends land here too, exactly like the oracle.
            return self._raising_kernel(f"{name.upper()} requires an argument")
        argument = self.compile(expr.args[0])
        distinct = expr.distinct

        def aggregate(kctx, groups, argument=argument):
            # One argument evaluation over the concatenated group
            # members (group order = the oracle's evaluation order),
            # then per-group slices into the shared aggregation core.
            flat: List[int] = []
            extents: List[int] = []
            for group in groups:
                flat.extend(group.indices)
                extents.append(len(group.indices))
            values = argument(kctx, flat)
            out: List[Any] = []
            start = 0
            for count in extents:
                members = collect_values(
                    values[start:start + count], distinct=distinct
                )
                out.append(aggregate_values(name, members))
                start += count
            return out

        return aggregate

    @staticmethod
    def _raising_kernel(message: str) -> Kernel:
        """A kernel that raises *message* — but only for non-empty input,
        matching per-unit oracle evaluation over an empty batch."""

        def kernel(kctx, units, message=message):
            if units:
                raise EvaluationError(message)
            return []

        return kernel

    def _grouped_fallback(self, expr: ast.Expr) -> Kernel:
        oracle = self._oracle

        def kernel(kctx, groups):
            table = kctx.table
            rows = table.rows
            out = []
            for group in groups:
                out.append(
                    oracle.evaluate(
                        expr,
                        rows[group.representative],
                        group=table.select_rows(list(group.indices)),
                        maximal_domain=kctx.maximal_domain,
                    )
                )
            return out

        return kernel

    # ------------------------------------------------------------------
    # Leaf kernels
    # ------------------------------------------------------------------
    @staticmethod
    def _param_kernel(name: str) -> Kernel:
        def kernel(kctx, rows):
            if not rows:
                return []
            params = kctx.ctx.params
            if name not in params:
                raise EvaluationError(f"missing query parameter: ${name}")
            value = params[name]
            if isinstance(value, (set, list)):
                value = frozenset(value)
            return [value] * len(rows)

        return kernel

    @staticmethod
    def _var_kernel(name: str) -> Kernel:
        def kernel(kctx, rows):
            vector = kctx.table.column_values(name)
            if vector is None:
                return [EMPTY_SET] * len(rows)
            return [EMPTY_SET if vector[i] is ABSENT else vector[i] for i in rows]

        return kernel

    @staticmethod
    def _label_test_kernel(var: str, labels) -> Kernel:
        def kernel(kctx, rows):
            vector = kctx.table.column_values(var)
            if vector is None:
                return [False] * len(rows)
            lookup = kctx.lookup_labels
            out = []
            for i in rows:
                value = vector[i]
                if value is ABSENT or isinstance(value, Walk):
                    out.append(False)
                else:
                    carried = lookup(value)
                    out.append(any(label in carried for label in labels))
            return out

        return kernel

    # ------------------------------------------------------------------
    # Structural kernels (shared by the scalar and grouped compilers)
    # ------------------------------------------------------------------
    @staticmethod
    def _prop_kernel(base: Kernel, key: str) -> Kernel:
        def kernel(kctx, rows):
            lookup = kctx.lookup_property
            out = []
            for value in base(kctx, rows):
                if value is None or isinstance(value, (Walk, frozenset, tuple)):
                    out.append(EMPTY_SET)
                else:
                    out.append(lookup(value, key))
            return out

        return kernel

    @staticmethod
    def _unary_kernel(op: str, operand: Kernel) -> Kernel:
        if op == "not":

            def negate(kctx, rows):
                return [not truthy(v) for v in operand(kctx, rows)]

            return negate

        def kernel(kctx, rows):
            out = []
            for value in operand(kctx, rows):
                value = as_scalar(value)
                if isinstance(value, frozenset):
                    out.append(EMPTY_SET)
                    continue
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise EvaluationError(f"unary {op} over non-number: {value!r}")
                out.append(-value if op == "-" else +value)
            return out

        return kernel

    def _binary_kernel(self, op: str, left: Kernel, right: Kernel) -> Kernel:
        if op == "and":

            def conjunction(kctx, rows):
                mask = [truthy(v) for v in left(kctx, rows)]
                sub = [u for u, m in zip(rows, mask) if m]
                rvals = iter(right(kctx, sub) if sub else ())
                return [m and truthy(next(rvals)) for m in mask]

            return conjunction
        if op == "or":

            def disjunction(kctx, rows):
                mask = [truthy(v) for v in left(kctx, rows)]
                sub = [u for u, m in zip(rows, mask) if not m]
                rvals = iter(right(kctx, sub) if sub else ())
                return [m or truthy(next(rvals)) for m in mask]

            return disjunction
        if op == "xor":

            def exclusive(kctx, rows):
                lvals = left(kctx, rows)
                rvals = right(kctx, rows)
                return [truthy(a) != truthy(b) for a, b in zip(lvals, rvals)]

            return exclusive
        element = _BINARY_ELEMENTWISE.get(op)
        if element is None:
            raise EvaluationError(f"unknown binary operator: {op}")

        def kernel(kctx, rows, element=element):
            lvals = left(kctx, rows)
            rvals = right(kctx, rows)
            return [element(a, b) for a, b in zip(lvals, rvals)]

        return kernel

    @staticmethod
    def _case_kernel(whens, default: Optional[Kernel]) -> Kernel:
        def kernel(kctx, rows):
            out = [EMPTY_SET] * len(rows)
            remaining = list(range(len(rows)))
            for condition, value in whens:
                if not remaining:
                    break
                conds = condition(kctx, [rows[p] for p in remaining])
                matched = [p for p, c in zip(remaining, conds) if truthy(c)]
                if matched:
                    values = value(kctx, [rows[p] for p in matched])
                    for p, v in zip(matched, values):
                        out[p] = v
                remaining = [p for p, c in zip(remaining, conds) if not truthy(c)]
            if default is not None and remaining:
                values = default(kctx, [rows[p] for p in remaining])
                for p, v in zip(remaining, values):
                    out[p] = v
            return out

        return kernel

    @staticmethod
    def _index_kernel(base: Kernel, index: Kernel) -> Kernel:
        def kernel(kctx, rows):
            bases = base(kctx, rows)
            indices = index(kctx, rows)
            out = []
            for value, position in zip(bases, indices):
                position = as_scalar(position)
                if not isinstance(position, int) or isinstance(position, bool):
                    raise EvaluationError(
                        f"list index must be an integer: {position!r}"
                    )
                if isinstance(value, tuple) and 0 <= position < len(value):
                    out.append(value[position])
                else:
                    out.append(EMPTY_SET)
            return out

        return kernel

    @staticmethod
    def _list_kernel(items: List[Kernel]) -> Kernel:
        def kernel(kctx, rows):
            if not items:
                return [()] * len(rows)
            vectors = [item(kctx, rows) for item in items]
            return [tuple(cells) for cells in zip(*vectors)]

        return kernel

    def _call_kernel(self, name: str, args: List[Kernel]) -> Kernel:
        call = self._oracle.call_builtin

        def kernel(kctx, rows):
            if not args:
                return [call(name, ()) for _ in rows]
            vectors = [arg(kctx, rows) for arg in args]
            return [call(name, cells) for cells in zip(*vectors)]

        return kernel

    def _fallback(self, expr: ast.Expr) -> Kernel:
        """Row-at-a-time oracle evaluation inside a compiled kernel.

        Used for node types with no columnar form (EXISTS subqueries,
        pattern predicates): semantics and error behaviour are the
        oracle's by construction.
        """
        oracle = self._oracle

        def kernel(kctx, rows):
            table_rows = kctx.table.rows
            return [oracle.evaluate(expr, table_rows[i]) for i in rows]

        return kernel


def _arith(op: str) -> Callable[[Any, Any], Any]:
    arithmetic = ExpressionEvaluator._arithmetic
    return lambda a, b: arithmetic(op, a, b)


_BINARY_ELEMENTWISE: Dict[str, Callable[[Any, Any], Any]] = {
    "=": gcore_equals,
    "<>": lambda a, b: not gcore_equals(a, b),
    "<": lambda a, b: gcore_compare("<", a, b),
    "<=": lambda a, b: gcore_compare("<=", a, b),
    ">": lambda a, b: gcore_compare(">", a, b),
    ">=": lambda a, b: gcore_compare(">=", a, b),
    "in": gcore_in,
    "subset": gcore_subset,
    "+": _arith("+"),
    "-": _arith("-"),
    "*": _arith("*"),
    "/": _arith("/"),
    "%": _arith("%"),
}
