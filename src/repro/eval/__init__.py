"""The G-CORE evaluator (Appendix A semantics)."""

from .context import EvalContext, IdFactory
from .expressions import ExpressionEvaluator
from .kernels import ExpressionCompiler, KernelContext
from .query import QueryResult, ViewResult, evaluate_query, evaluate_statement

__all__ = [
    "EvalContext",
    "IdFactory",
    "ExpressionCompiler",
    "ExpressionEvaluator",
    "KernelContext",
    "QueryResult",
    "ViewResult",
    "evaluate_query",
    "evaluate_statement",
]
