"""The G-CORE evaluator (Appendix A semantics)."""

from .context import EvalContext, IdFactory
from .expressions import ExpressionEvaluator
from .query import QueryResult, ViewResult, evaluate_query, evaluate_statement

__all__ = [
    "EvalContext",
    "IdFactory",
    "ExpressionEvaluator",
    "QueryResult",
    "ViewResult",
    "evaluate_query",
    "evaluate_statement",
]
