"""Top-level query evaluation: head clauses, set operations, basic queries.

This module stitches the pieces together, following the grammar of
Section 4: a query is a sequence of PATH / GRAPH head clauses followed by
a *full graph query* — a tree of UNION / INTERSECT / MINUS over basic
queries (CONSTRUCT/SELECT over MATCH/FROM) and graph references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Union

from ..algebra.binding import Binding, BindingTable
from ..errors import SemanticError
from ..lang import ast
from ..model.graph import PathPropertyGraph
from ..model.setops import graph_difference, graph_intersect, graph_union
from ..table import Table
from .analysis import analyze_match
from .construct import evaluate_construct
from .context import EvalContext
from .match import evaluate_match
from .select import evaluate_select

__all__ = ["QueryResult", "ViewResult", "evaluate_statement", "evaluate_query"]


@dataclass(frozen=True)
class ViewResult:
    """The result of executing a GRAPH VIEW statement."""

    name: str
    graph: PathPropertyGraph


QueryResult = Union[PathPropertyGraph, Table, ViewResult]


def evaluate_statement(statement: ast.Statement, ctx: EvalContext) -> QueryResult:
    """Evaluate a statement: a query, or a GRAPH VIEW registration.

    View registration runs the maintenance analysis
    (:func:`repro.eval.maintenance.analyze_view`): incrementally
    maintainable views capture their MATCH binding table through
    ``ctx.omega_sink`` and store support counts alongside the
    materialization, so later deltas on the base graph refresh the view
    by patching instead of recomputing.
    """
    if isinstance(statement, ast.GraphViewStmt):
        from .maintenance import materialize_view  # cycle guard

        result = materialize_view(
            statement.name,
            statement.query,
            ctx,
            error="a GRAPH VIEW must be defined by a graph query",
        )
        return ViewResult(statement.name, result.with_name(statement.name))
    return evaluate_query(statement, ctx)


def evaluate_query(
    query: ast.Query,
    ctx: EvalContext,
    seed: Optional[Binding] = None,
) -> Union[PathPropertyGraph, Table]:
    """Evaluate a query; *seed* carries correlated outer bindings (A.2)."""
    for head in query.heads:
        if isinstance(head, ast.PathClause):
            ctx.local_path_views[head.name] = head
        elif isinstance(head, ast.GraphClause):
            result = evaluate_query(head.query, ctx.child())
            if not isinstance(result, PathPropertyGraph):
                raise SemanticError(
                    f"GRAPH {head.name} AS (...) must produce a graph"
                )
            ctx.local_graphs[head.name] = result.with_name(head.name)
        else:  # pragma: no cover - parser guarantees
            raise SemanticError(f"unknown head clause: {head!r}")
    return _evaluate_body(query.body, ctx, seed)


def _evaluate_body(
    body: ast.QueryBody, ctx: EvalContext, seed: Optional[Binding]
) -> Union[PathPropertyGraph, Table]:
    if isinstance(body, ast.GraphRefQuery):
        return ctx.resolve_graph(body.name)
    if isinstance(body, ast.SetOpQuery):
        left = _evaluate_body(body.left, ctx, seed)
        right = _evaluate_body(body.right, ctx, seed)
        if not isinstance(left, PathPropertyGraph) or not isinstance(
            right, PathPropertyGraph
        ):
            raise SemanticError(
                "set operations (UNION/INTERSECT/MINUS) apply to graphs only"
            )
        if body.op == "union":
            return graph_union(left, right)
        if body.op == "intersect":
            return graph_intersect(left, right)
        if body.op == "minus":
            return graph_difference(left, right)
        raise SemanticError(f"unknown set operation: {body.op}")
    if isinstance(body, ast.BasicQuery):
        return _evaluate_basic(body, ctx, seed)
    raise SemanticError(f"unknown query body: {body!r}")


def _evaluate_basic(
    basic: ast.BasicQuery, ctx: EvalContext, seed: Optional[Binding]
) -> Union[PathPropertyGraph, Table]:
    declared: FrozenSet[str]
    if basic.from_table is not None:
        table = ctx.catalog.table(basic.from_table)
        rows = [
            Binding(dict(zip(table.columns, row_values)))
            for row_values in table.rows
        ]
        omega = BindingTable(table.columns, rows)
        declared = frozenset(table.columns)
        if seed is not None:
            shared = [v for v in seed.domain if v in omega.columns]
            if shared:
                seed_row = seed.project(shared)
                omega = omega.filter(lambda r: r.compatible(seed_row))
    elif basic.match is not None:
        sorts = analyze_match(basic.match)
        declared = frozenset(sorts)
        seed_table: Optional[BindingTable] = None
        if seed is not None:
            # Outer variables act as parameters of the correlated subquery
            # (A.2): seed the whole outer binding — shared pattern
            # variables join on identity, and WHERE conditions may read
            # any outer variable.
            seed_table = BindingTable(tuple(sorted(seed.domain)), [seed])
            declared = declared | seed.domain
        omega = evaluate_match(basic.match, ctx, seed=seed_table)
    else:
        declared = frozenset()
        omega = BindingTable.unit()

    if ctx.omega_sink is not None:
        # View registration captures the top-level MATCH table for the
        # incremental-maintenance support counts (subqueries run in child
        # contexts, whose sink is always None).
        ctx.omega_sink.append(omega)

    if isinstance(basic.head, ast.SelectClause):
        return evaluate_select(basic.head, omega, ctx)
    if isinstance(basic.head, ast.ConstructClause):
        return evaluate_construct(basic.head, omega, ctx, declared)
    raise SemanticError(f"unknown basic query head: {basic.head!r}")
