"""Morsel-driven parallel execution: scheduler, worker pools, merge order.

The columnar engine's hot loops are embarrassingly row-partitionable:
atom hash-join probes and compiled WHERE kernels operate row-by-row over
immutable graphs, GROUP BY aggregation operates group-by-group, and the
batched path engine's per-source searches are independent. This module
splits that work into **morsels** (row ranges, group chunks, source
chunks), runs them on a worker pool sized by
:attr:`ExecutionConfig.parallelism <repro.config.ExecutionConfig>`, and
merges results **in morsel order**, which provably reproduces the serial
engine's emission order (every dispatched operator emits per-input-unit
in input order; the only cross-morsel interaction is row deduplication,
which is first-occurrence-wins on both sides). The serial engine stays
the oracle: ``tests/property/test_prop_parallel_oracle.py`` asserts
exact table/graph parity for every lattice point.

Three backends share one dispatch surface:

* ``fork`` (default where available) — a ``ProcessPoolExecutor`` over
  forked workers. Graphs are **not** pickled per task: the parent
  publishes them in the fork-inherited :data:`export registry
  <_EXPORTS>` before the pool forks, so workers read the shared
  copy-on-write adjacency indexes for free (they are immutable between
  epochs). A task naming a token the worker's fork snapshot does not
  know returns a stale marker; the parent then recycles the pool (a
  fresh fork sees the current registry) and retries once. Only small
  per-query state — the morsel's binding vectors, atom ASTs, the
  pushdown plan, parameters — crosses the pipe.
* ``spawn`` — a ``ProcessPoolExecutor`` over freshly started
  interpreters. Spawned workers inherit nothing, so plain export
  tokens cannot resolve there; *snapshot-backed* graphs
  (:class:`~repro.storage.flatstore.FlatPathPropertyGraph`) instead
  export as self-describing ``(path, graph)`` references that any
  process resolves by attaching to the snapshot's shared read-only
  mapping (:func:`repro.storage.attach`) — N workers, one mapping, no
  per-worker deserialization. Queries over non-snapshot graphs degrade
  to the serial path via the ordinary stale-token protocol.
* ``thread`` — a ``ThreadPoolExecutor`` running the identical worker
  functions in-process. Pure-Python work gains no wall-clock speedup
  under the GIL, but the backend keeps every worker code path
  exercisable (and deterministic to debug) on any platform; it is also
  the automatic fallback when ``fork`` is unavailable.

Every dispatch site degrades to serial execution — never to an error —
when the work is too small (the ``MIN_PARALLEL_*`` thresholds), the
expressions are not worker-safe (EXISTS subqueries and pattern
predicates need the full evaluation context), or the pool backend fails
(sandboxes without working ``fork``); query-semantics errors raised
inside a worker (:class:`~repro.errors.GCoreError`) propagate to the
caller exactly as the serial engine would raise them.
"""

from __future__ import annotations

import atexit
import itertools
import pickle
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algebra.binding import BindingTable
from ..config import ExecutionConfig
from ..errors import GCoreError
from ..lang import ast
from ..paths.automaton import regex_view_names
from ..paths.product import partition_sources

__all__ = [
    "POOL_FALLBACK_EXCEPTIONS",
    "fallback_counts",
    "morsel_ranges",
    "parallel_block_tail",
    "parallel_filter",
    "parallel_grouped_cells",
    "parallel_reachable_multi",
    "parallel_shortest_multi",
    "record_fallback",
    "reset_fallback_counts",
    "shutdown_pools",
]

#: The exceptions that legitimately mean "this dispatch cannot run on the
#: pool — degrade to the serial path". Everything else (AssertionError
#: from a worker invariant, KeyboardInterrupt, genuine bugs in worker
#: code) propagates to the caller instead of being silently swallowed;
#: the differential fuzzer depends on that to observe worker failures.
POOL_FALLBACK_EXCEPTIONS = (
    OSError,  # fork/pipe/file-descriptor failures (sandboxed fork)
    RuntimeError,  # BrokenExecutor & pool use during interpreter shutdown
    pickle.PicklingError,  # unpicklable task payload
    TypeError,  # pickle's other "cannot serialize" complaint
    EOFError,  # a worker died mid-result and tore the pipe
)

# ---------------------------------------------------------------------------
# Fallback observability (surfaced by the HTTP server's /stats endpoint)
# ---------------------------------------------------------------------------

_FALLBACK_LOCK = threading.Lock()
_FALLBACK_COUNTS: Dict[str, int] = {}


def record_fallback(site: str) -> None:
    """Count one silent degradation to the serial path at *site*."""
    with _FALLBACK_LOCK:
        _FALLBACK_COUNTS[site] = _FALLBACK_COUNTS.get(site, 0) + 1


def fallback_counts() -> Dict[str, int]:
    """A snapshot of the per-site fallback counters (``site -> count``)."""
    with _FALLBACK_LOCK:
        return dict(sorted(_FALLBACK_COUNTS.items()))


def reset_fallback_counts() -> None:
    """Zero the fallback counters (tests)."""
    with _FALLBACK_LOCK:
        _FALLBACK_COUNTS.clear()

# ---------------------------------------------------------------------------
# Tunables (module-level so tests and benchmarks can pin them)
# ---------------------------------------------------------------------------

#: Minimum binding-table rows before the remaining atoms of a block are
#: dispatched to the pool (below this, fan-out overhead dominates).
MIN_PARALLEL_ROWS = 192
#: Minimum GROUP BY groups before partial aggregation is dispatched.
MIN_PARALLEL_GROUPS = 96
#: Minimum distinct path sources before per-source-group dispatch.
MIN_PARALLEL_SOURCES = 24
#: Minimum rows before a residual WHERE conjunction is dispatched.
MIN_PARALLEL_FILTER_ROWS = 4096
#: Morsels per worker: >1 smooths skew, at the price of more task pickles.
MORSELS_PER_WORKER = 2

_FORK_AVAILABLE = False
try:  # pragma: no cover - platform probe
    import multiprocessing

    _FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()
except (ImportError, OSError):  # pragma: no cover - multiprocessing missing
    multiprocessing = None  # type: ignore[assignment]

#: ``"fork"`` (real multi-core scaling, Linux/macOS), ``"spawn"``
#: (multi-core on any platform; workers see only snapshot-attach
#: tokens), or ``"thread"`` (GIL-bound, but portable and in-process).
#: Tests monkeypatch this to pin a backend; ``"fork"`` silently
#: degrades to ``"thread"`` when the platform cannot fork.
DEFAULT_BACKEND = "fork" if _FORK_AVAILABLE else "thread"


def morsel_ranges(nrows: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``range(nrows)`` into at most ``workers * MORSELS_PER_WORKER``
    contiguous, near-equal ``(start, stop)`` ranges, in row order."""
    if nrows <= 0:
        return []
    count = min(max(1, workers) * MORSELS_PER_WORKER, nrows)
    base, extra = divmod(nrows, count)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(count):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def chunked(items: Sequence[Any], workers: int) -> List[Sequence[Any]]:
    """Partition *items* into contiguous chunks, preserving order."""
    ranges = morsel_ranges(len(items), workers)
    return [items[start:stop] for start, stop in ranges]


# ---------------------------------------------------------------------------
# Fork-inherited export registry (big immutable state, e.g. graphs)
# ---------------------------------------------------------------------------

_EXPORT_LIMIT = 32
_EXPORTS: "OrderedDict[int, Any]" = OrderedDict()
_EXPORT_TOKENS: Dict[int, int] = {}  # id(obj) -> token
_export_counter = itertools.count(1)
_MISSING = object()
#: Wire marker a worker returns when a token is not in its fork snapshot.
_STALE = "__gcore_stale_export__"
#: First element of a snapshot-attach token: ``(marker, path, stored
#: graph name, catalog name)``. Unlike integer registry tokens these are
#: self-describing — *any* process (forked or spawned) resolves one by
#: attaching to the snapshot file's shared mapping.
_SNAPSHOT_TOKEN = "__gcore_snapshot_graph__"

#: A worker-resolvable graph reference: an integer registry token, a
#: snapshot-attach tuple, or None.
Token = Any


def export(obj: Any) -> Token:
    """Publish *obj* for worker sharing; returns its token.

    Snapshot-backed graphs (:class:`FlatPathPropertyGraph`) export as
    ``(path, graph)`` attach references — no registry entry, no fork
    dependency, stable across pool recycles. Everything else lands in
    the fork-inherited registry, idempotent per object identity. The
    registry is a small LRU: graphs are long-lived (epoch-immutable),
    so a handful of entries covers a working set; evicting or newly
    publishing makes existing forked pools stale, which the dispatcher
    repairs by re-forking.
    """
    from ..storage.flatstore import FlatPathPropertyGraph  # cycle-free

    if isinstance(obj, FlatPathPropertyGraph):
        store = obj.store
        return (_SNAPSHOT_TOKEN, store.reader.path, store.name, obj.name)
    token = _EXPORT_TOKENS.get(id(obj))
    if token is not None and _EXPORTS.get(token) is obj:
        _EXPORTS.move_to_end(token)
        return token
    token = next(_export_counter)
    _EXPORTS[token] = obj
    _EXPORT_TOKENS[id(obj)] = token
    while len(_EXPORTS) > _EXPORT_LIMIT:
        _evicted, evicted_obj = _EXPORTS.popitem(last=False)
        _EXPORT_TOKENS.pop(id(evicted_obj), None)
    return token


def _resolve(token: Token) -> Any:
    if token is None:
        return None
    if isinstance(token, tuple) and token and token[0] == _SNAPSHOT_TOKEN:
        from ..storage.snapshot import _reopen_graph

        try:
            return _reopen_graph(token[1], token[2], token[3])
        except (OSError, ValueError, GCoreError):
            # Unreadable/removed/corrupt snapshot file: report stale; the
            # dispatcher recycles and ultimately falls back to serial.
            record_fallback("snapshot_reopen")
            return _MISSING
    return _EXPORTS.get(token, _MISSING)


# ---------------------------------------------------------------------------
# Worker-pool lifecycle
# ---------------------------------------------------------------------------

_POOLS: Dict[Tuple[str, int], Any] = {}
_POOL_LOCK = threading.Lock()


def _make_pool(backend: str, workers: int):
    from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

    if backend == "fork" and _FORK_AVAILABLE:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"),
        )
    if backend == "spawn" and multiprocessing is not None:
        # Spawned workers inherit nothing: integer registry tokens come
        # back _STALE (→ serial fallback), but snapshot-attach tokens
        # resolve anywhere, so snapshot-backed queries scale on
        # platforms without fork.
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("spawn"),
        )
    return ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="gcore-morsel"
    )


def _get_pool(backend: str, workers: int):
    key = (backend, workers)
    with _POOL_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            pool = _make_pool(backend, workers)
            _POOLS[key] = pool
        return pool


def _recycle_pool(backend: str, workers: int) -> None:
    """Drop (and shut down) the pool so the next dispatch re-forks."""
    key = (backend, workers)
    with _POOL_LOCK:
        pool = _POOLS.pop(key, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every cached worker pool (tests; process exit)."""
    with _POOL_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


class _Fallback(Exception):
    """Internal: this dispatch cannot run in parallel — go serial."""

    def __init__(self, reason: str = "pool_error") -> None:
        super().__init__(reason)
        self.reason = reason


def _run_tasks(fn, payloads: List[Any], config: ExecutionConfig) -> List[Any]:
    """Map *fn* over *payloads* on the configured pool, in order.

    Raises :class:`_Fallback` when the pool is unusable (the caller runs
    the serial path); re-raises :class:`~repro.errors.GCoreError` from
    workers (genuine query errors — serial would raise them too). A
    stale export token recycles the pool (re-fork) and retries once.
    Worker exceptions outside :data:`POOL_FALLBACK_EXCEPTIONS` — e.g. an
    ``AssertionError`` tripped inside a kernel — propagate unchanged.
    """
    backend = DEFAULT_BACKEND
    workers = max(1, config.parallelism)
    for attempt in (0, 1):
        pool = _get_pool(backend, workers)
        try:
            results = list(pool.map(fn, payloads))
        except GCoreError:
            # Genuine query-semantics error: serial would raise it too.
            raise
        except POOL_FALLBACK_EXCEPTIONS:
            # Broken pool, unpicklable payload, sandboxed fork — none of
            # these may surface to the query; recycle and (once) retry,
            # then hand control back to the serial path.
            _recycle_pool(backend, workers)
            if attempt:
                raise _Fallback("pool_error") from None
            continue
        if any(result == _STALE for result in results):
            _recycle_pool(backend, workers)
            if attempt:
                raise _Fallback("stale_export")
            continue
        return results
    raise _Fallback  # pragma: no cover - loop always returns or raises


# ---------------------------------------------------------------------------
# Binding-table wire form (explicit vectors; never instance caches)
# ---------------------------------------------------------------------------

def table_payload(table: BindingTable) -> Tuple[Any, ...]:
    """The picklable wire form of a binding table (columns + vectors)."""
    return (
        tuple(table.columns),
        tuple(table.variables),
        {var: table.column_values(var) for var in table.variables},
        len(table),
    )


def table_from_payload(payload: Tuple[Any, ...]) -> BindingTable:
    columns, variables, data, nrows = payload
    return BindingTable.from_columns(
        columns, list(variables), data, nrows, dedup=False
    )


def merge_tables(payloads: List[Tuple[Any, ...]]) -> BindingTable:
    """Concatenate morsel outputs in morsel order, deduplicating rows.

    Morsel-local results are already deduplicated (the columnar
    operators dedup as the serial engine does); the only duplicates left
    are cross-morsel ones, and first-occurrence-wins here matches the
    serial engine's dedup of the concatenated stream exactly.
    """
    # A morsel whose intermediate table empties short-circuits the rest
    # of its atom sequence (run_atom_sequence breaks), so its chunk can
    # carry fewer columns than its siblings — zero rows either way. Take
    # the schema from the fullest payload; every non-empty chunk ran the
    # complete sequence and therefore has exactly that variable set.
    columns, variables, _data, _nrows = max(
        payloads, key=lambda payload: len(payload[1])
    )
    data: Dict[str, List[Any]] = {var: [] for var in variables}
    total = 0
    for payload in payloads:
        _columns, _vars, chunk, nrows = payload
        if nrows == 0:
            continue
        total += nrows
        for var in variables:
            data[var].extend(chunk[var])
    return BindingTable.from_columns(
        columns, list(variables), data, total, dedup=True
    )


# ---------------------------------------------------------------------------
# Worker-safety analysis
# ---------------------------------------------------------------------------

def _node_safe(node: Any) -> bool:
    """Conservatively: can *node* (an AST subtree) evaluate in a worker?

    EXISTS subqueries and pattern predicates re-enter full block
    evaluation (plan caches, ON resolution, view registries) — they stay
    on the serial path. Everything else an atom or WHERE carries
    (literals, params, property/label reads, arithmetic, CASE, builtins)
    only needs the shipped graphs and parameters.
    """
    if isinstance(node, (ast.ExistsQuery, ast.ExistsPattern)):
        return False
    if hasattr(node, "__dataclass_fields__"):
        return all(
            _node_safe(getattr(node, field))
            for field in node.__dataclass_fields__
        )
    if isinstance(node, (tuple, list, frozenset)):
        return all(_node_safe(item) for item in node)
    return True


def _atom_safe(atom: Any) -> bool:
    pattern = atom.pattern
    if getattr(atom, "kind", None) == "path":
        if pattern.stored:
            return _node_safe(pattern)
        # Path views need ctx.segments_for (a parent-side materializer).
        if regex_view_names(pattern.regex):
            return False
    return _node_safe(pattern)


def exprs_safe(*nodes: Any) -> bool:
    """True when every given AST node (or None) is worker-evaluable."""
    return all(node is None or _node_safe(node) for node in nodes)


# ---------------------------------------------------------------------------
# Worker-side evaluation context
# ---------------------------------------------------------------------------

class _WorkerCatalog:
    """The minimal read surface workers need: the default graph."""

    __slots__ = ("_default",)

    def __init__(self, default_graph: Any) -> None:
        self._default = default_graph

    def default_graph(self) -> Any:
        return self._default


def _worker_context(
    config: ExecutionConfig,
    params: Dict[str, Any],
    graphs: List[Any],
    current_graph: Any,
    default_graph: Any,
):
    from .context import EvalContext  # local import: cycle via match

    ctx = EvalContext(
        _WorkerCatalog(default_graph),
        config=config.with_(parallelism=1),  # workers never re-fan-out
    )
    ctx.params = dict(params)
    ctx.active_graphs = list(graphs)
    ctx.current_graph = current_graph
    return ctx


def _resolve_graph_tokens(tokens: Sequence[Token]) -> Optional[list]:
    graphs = []
    for token in tokens:
        graph = _resolve(token)
        if graph is _MISSING:
            return None
        graphs.append(graph)
    return graphs


def _context_tokens(ctx, graph) -> Tuple[Token, Optional[Token], List[Token]]:
    """Export the graphs a worker context needs to answer lookups.

    Ships the probed graph, every active graph of the evaluation (a
    MATCH may bind objects from several graphs), and the catalog default
    (the tail of :meth:`EvalContext._lookup_chain`), so worker-side
    label/property resolution walks the same chain as the parent.
    """
    graph_token = export(graph)
    try:
        default = ctx.catalog.default_graph()
    except GCoreError:
        # No default graph registered (or a snapshot without one):
        # workers simply run with no implicit ON target.
        default = None
    default_token = export(default) if default is not None else None
    active_tokens = [export(g) for g in ctx.active_graphs]
    return graph_token, default_token, active_tokens


# ---------------------------------------------------------------------------
# 1) Block tail: remaining atoms + residual WHERE over row morsels
# ---------------------------------------------------------------------------

def _block_tail_worker(payload):
    (
        graph_token,
        default_token,
        active_tokens,
        table_wire,
        atoms,
        plan,
        bound,
        where,
        params,
        config,
    ) = payload
    graphs = _resolve_graph_tokens([graph_token, default_token, *active_tokens])
    if graphs is None:
        return _STALE
    graph, default_graph, *active = graphs
    from .expressions import ExpressionEvaluator  # local import: cycle
    from .kernels import ExpressionCompiler
    from .match import finish_block_where, run_atom_sequence

    ctx = _worker_context(config, params, active, graph, default_graph)
    ev = ExpressionEvaluator(ctx)
    compiler = (
        ExpressionCompiler(ctx) if ctx.use_vectorized() else None
    )
    table = table_from_payload(table_wire)
    table = run_atom_sequence(
        atoms, table, graph, ctx, ev, compiler, plan, set(bound)
    )
    table = finish_block_where(table, plan, where, ctx, compiler, ev)
    return table_payload(table)


def parallel_block_tail(
    ordered: List[Any],
    start: int,
    table: BindingTable,
    graph: Any,
    ctx,
    plan,
    bound_by_atoms,
    where,
) -> Optional[BindingTable]:
    """Dispatch ``ordered[start:]`` plus the residual WHERE over morsels.

    Returns the merged block-final table, or None when this point is not
    worth (or not safe to) parallelizing — the caller continues serially.
    Exactness: each morsel runs the identical operator sequence over a
    contiguous row range; atoms emit per-input-row in input order, so
    concatenating morsel outputs in morsel order *is* the serial
    emission order, and the final first-occurrence dedup matches the
    serial engine's (see :func:`merge_tables`).
    """
    config = ctx.config
    if config.serial or config.executor != "columnar":
        return None
    if len(table) < MIN_PARALLEL_ROWS:
        return None
    remaining = ordered[start:]
    if not remaining:
        return None
    if not all(_atom_safe(atom) for atom in remaining):
        return None
    if not exprs_safe(where):
        return None
    graph_token, default_token, active_tokens = _context_tokens(ctx, graph)
    shipped_config = config.with_(parallelism=1)
    bound = frozenset(bound_by_atoms)
    payloads = [
        (
            graph_token,
            default_token,
            active_tokens,
            table_payload(table.select_rows(range(start_row, stop_row))),
            remaining,
            plan,
            bound,
            where,
            ctx.params,
            shipped_config,
        )
        for start_row, stop_row in morsel_ranges(
            len(table), config.parallelism
        )
    ]
    try:
        results = _run_tasks(_block_tail_worker, payloads, config)
    except _Fallback as fall:  # pool unusable: serial path re-runs the tail
        record_fallback(f"block_tail.{fall.reason}")
        return None
    return merge_tables(results)


# ---------------------------------------------------------------------------
# 2) Residual WHERE conjunction over row morsels
# ---------------------------------------------------------------------------

def _filter_worker(payload):
    (
        graph_tokens,
        table_wire,
        conjuncts,
        params,
        config,
    ) = payload
    graphs = _resolve_graph_tokens(graph_tokens)
    if graphs is None:
        return _STALE
    current, default_graph, *active = graphs
    from .kernels import compiled_filter_rows  # local import: cycle

    ctx = _worker_context(config, params, active, current, default_graph)
    table = table_from_payload(table_wire)
    return compiled_filter_rows(table, ctx, conjuncts)


def parallel_filter(
    conjuncts: List[ast.Expr], table: BindingTable, ctx
) -> Optional[List[int]]:
    """Evaluate a WHERE conjunction over row morsels; surviving indices.

    Returns the globally-indexed surviving rows (ascending, as the
    serial kernel filter produces), or None to run serially. Conjunct
    short-circuiting is per-row, so partitioning rows cannot change
    which conjuncts any row reaches — error semantics included.
    """
    config = ctx.config
    if config.serial or not ctx.use_vectorized():
        return None
    if len(table) < MIN_PARALLEL_FILTER_ROWS:
        return None
    if not exprs_safe(*conjuncts):
        return None
    current = ctx.current_graph
    graph_token = export(current) if current is not None else None
    try:
        default = ctx.catalog.default_graph()
    except GCoreError:
        # No default graph registered (or a snapshot without one):
        # workers simply run with no implicit ON target.
        default = None
    default_token = export(default) if default is not None else None
    active_tokens = [export(g) for g in ctx.active_graphs]
    shipped_config = config.with_(parallelism=1)
    ranges = morsel_ranges(len(table), config.parallelism)
    payloads = [
        (
            [graph_token, default_token, *active_tokens],
            table_payload(table.select_rows(range(start, stop))),
            conjuncts,
            ctx.params,
            shipped_config,
        )
        for start, stop in ranges
    ]
    try:
        results = _run_tasks(_filter_worker, payloads, config)
    except _Fallback as fall:  # pool unusable: serial path re-filters
        record_fallback(f"filter.{fall.reason}")
        return None
    survivors: List[int] = []
    for (start, _stop), local in zip(ranges, results):
        survivors.extend(start + offset for offset in local)
    return survivors


# ---------------------------------------------------------------------------
# 3) GROUP BY partial aggregation over group chunks
# ---------------------------------------------------------------------------

def _grouped_worker(payload):
    (
        graph_tokens,
        table_wire,
        local_specs,
        item_exprs,
        maximal_domain,
        params,
        config,
    ) = payload
    graphs = _resolve_graph_tokens(graph_tokens)
    if graphs is None:
        return _STALE
    current, default_graph, *active = graphs
    from .kernels import ExpressionCompiler, GroupSpec, KernelContext

    ctx = _worker_context(config, params, active, current, default_graph)
    table = table_from_payload(table_wire)
    kctx = KernelContext(table, ctx, maximal_domain=maximal_domain)
    compiler = ExpressionCompiler(ctx)
    specs = [GroupSpec(rep, list(indices)) for rep, indices in local_specs]
    return [
        compiler.compile_grouped(expr)(kctx, specs) for expr in item_exprs
    ]


def parallel_grouped_cells(
    omega: BindingTable,
    specs: List[Any],
    item_exprs: List[ast.Expr],
    ctx,
    maximal_domain,
) -> Optional[List[List[Any]]]:
    """Aggregate GROUP BY groups on the pool; per-item cell columns.

    Groups are partitioned **whole** (a chunk owns every row of its
    groups), so each group's aggregate is computed exactly as the serial
    kernel computes it; chunk outputs concatenate back in the parent's
    group order, which is the serial merge order. Returns
    ``cell_columns[item][group]`` (un-normalized), or None to go serial.
    """
    from .expressions import expr_variables  # local import: cycle

    config = ctx.config
    if config.serial or not ctx.use_vectorized():
        return None
    if len(specs) < MIN_PARALLEL_GROUPS:
        return None
    if not exprs_safe(*item_exprs):
        return None
    needed: set = set(maximal_domain or ())
    for expr in item_exprs:
        needed |= expr_variables(expr)
    variables = [var for var in omega.variables if var in needed]
    maxdom = tuple(maximal_domain or ())
    current = ctx.current_graph
    graph_token = export(current) if current is not None else None
    try:
        default = ctx.catalog.default_graph()
    except GCoreError:
        # No default graph registered (or a snapshot without one):
        # workers simply run with no implicit ON target.
        default = None
    default_token = export(default) if default is not None else None
    active_tokens = [export(g) for g in ctx.active_graphs]
    shipped_config = config.with_(parallelism=1)

    payloads = []
    for chunk in chunked(specs, config.parallelism):
        # Each chunk ships only its own rows: remap the chunk's specs
        # onto a compact sub-table (group order and member order kept).
        row_indices: List[int] = []
        local_specs: List[Tuple[int, List[int]]] = []
        position: Dict[int, int] = {}
        for spec in chunk:
            local: List[int] = []
            for index in spec.indices:
                local_index = position.get(index)
                if local_index is None:
                    local_index = len(row_indices)
                    position[index] = local_index
                    row_indices.append(index)
                local.append(local_index)
            local_specs.append((position[spec.representative], local))
        sub = omega.select_rows(row_indices)
        wire = (
            tuple(sub.columns),
            tuple(variables),
            {var: sub.column_values(var) for var in variables},
            len(sub),
        )
        payloads.append(
            (
                [graph_token, default_token, *active_tokens],
                wire,
                local_specs,
                tuple(item_exprs),
                maxdom,
                ctx.params,
                shipped_config,
            )
        )
    try:
        results = _run_tasks(_grouped_worker, payloads, config)
    except _Fallback as fall:  # pool unusable: serial path re-aggregates
        record_fallback(f"group_by.{fall.reason}")
        return None
    cell_columns: List[List[Any]] = [[] for _ in item_exprs]
    for chunk_cells in results:
        for item_index, column in enumerate(chunk_cells):
            cell_columns[item_index].extend(column)
    return cell_columns


# ---------------------------------------------------------------------------
# 4) Batched path search over source chunks
# ---------------------------------------------------------------------------

def _paths_worker(payload):
    graph_token, regex, mode, sources, targets_map, config = payload
    graph = _resolve(graph_token)
    if graph is _MISSING:
        return _STALE
    from .match import _nfa_for  # local import: cycle
    from ..paths.product import PathFinder

    finder = PathFinder(graph, _nfa_for(regex), {}, naive=False)
    if mode == "reach":
        return finder.reachable_multi(list(sources))
    return finder.shortest_multi(list(sources), dict(targets_map))


def _parallel_paths(
    ctx, graph, pattern, mode: str, sources: List[Any], targets_map
) -> Optional[Dict[Any, Any]]:
    config = ctx.config
    if config.serial or config.paths != "batched":
        return None
    if len(sources) < MIN_PARALLEL_SOURCES:
        return None
    if pattern.stored or regex_view_names(pattern.regex):
        return None
    graph_token = export(graph)
    payloads = []
    chunks = partition_sources(
        sources, config.parallelism * MORSELS_PER_WORKER
    )
    for chunk in chunks:
        chunk_targets = (
            {source: targets_map[source] for source in chunk}
            if targets_map is not None
            else None
        )
        payloads.append(
            (graph_token, pattern.regex, mode, list(chunk), chunk_targets,
             config.with_(parallelism=1))
        )
    try:
        results = _run_tasks(_paths_worker, payloads, config)
    except _Fallback as fall:  # pool unusable: serial path re-searches
        record_fallback(f"paths.{fall.reason}")
        return None
    merged: Dict[Any, Any] = {}
    for chunk_result in results:
        merged.update(chunk_result)
    return merged


def parallel_shortest_multi(
    ctx, graph, pattern, sources: List[Any], targets_map
) -> Optional[Dict[Any, Any]]:
    """``PathFinder.shortest_multi`` over source chunks (exact: each
    source's search is independent and deterministic, so any partition
    returns the same per-source walks)."""
    return _parallel_paths(ctx, graph, pattern, "shortest", sources,
                           targets_map)


def parallel_reachable_multi(
    ctx, graph, pattern, sources: List[Any]
) -> Optional[Dict[Any, Any]]:
    """``PathFinder.reachable_multi`` over source chunks (exact)."""
    return _parallel_paths(ctx, graph, pattern, "reach", sources, None)
