"""SELECT evaluation — the tabular projection extension of Section 5.

``SELECT e1 AS a1, ... MATCH ...`` projects the binding set into a
:class:`~repro.table.Table`. Following the paper's sketch ("slicing,
sorting, and aggregation, similar to Cypher's RETURN clause"), we support
DISTINCT, GROUP BY, ORDER BY (ASC/DESC), LIMIT and OFFSET, and aggregate
items (with an implicit single group when no GROUP BY is given).
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from ..algebra.binding import Binding, BindingTable
from ..lang import ast
from ..lang.pretty import pretty_expr
from ..table import Table
from .context import EvalContext
from .expressions import ExpressionEvaluator, expr_has_aggregate

__all__ = ["evaluate_select"]


def _column_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    return pretty_expr(item.expr)


def _normalize(value: Any) -> Any:
    """Flatten evaluation results into table cells."""
    if isinstance(value, frozenset):
        if not value:
            return None
        if len(value) == 1:
            return next(iter(value))
        return value
    return value


def _sort_token(value: Any) -> Tuple[str, str]:
    return (type(value).__name__, str(value))


def evaluate_select(
    select: ast.SelectClause,
    omega: BindingTable,
    ctx: EvalContext,
) -> Table:
    """Evaluate a SELECT head over the binding set *omega*."""
    ev = ExpressionEvaluator(ctx)
    columns = [_column_name(item, i) for i, item in enumerate(select.items)]
    maxdom = omega.maximal_domain()
    aggregated = bool(select.group_by) or any(
        expr_has_aggregate(item.expr) for item in select.items
    )

    # GROUP BY / ORDER BY may reference SELECT aliases; resolve them to
    # the underlying expressions before evaluation.
    aliases = {
        item.alias: item.expr for item in select.items if item.alias
    }
    group_exprs = tuple(
        aliases.get(expr.name, expr) if isinstance(expr, ast.Var) else expr
        for expr in select.group_by
    )

    raw_rows: List[Tuple[Binding, Tuple[Any, ...]]] = []
    if aggregated:
        groups = _group(omega, group_exprs, ev)
        for representative, group in groups:
            cells = tuple(
                _normalize(
                    ev.evaluate(
                        item.expr, representative, group=group,
                        maximal_domain=maxdom,
                    )
                )
                for item in select.items
            )
            raw_rows.append((representative, cells))
    else:
        for row in omega:
            cells = tuple(
                _normalize(ev.evaluate(item.expr, row)) for item in select.items
            )
            raw_rows.append((row, cells))

    if select.distinct:
        seen = set()
        unique: List[Tuple[Binding, Tuple[Any, ...]]] = []
        for row, cells in raw_rows:
            key = tuple(_sort_token(c) for c in cells)
            if key not in seen:
                seen.add(key)
                unique.append((row, cells))
        raw_rows = unique

    if select.order_by:
        def order_key(entry: Tuple[Binding, Tuple[Any, ...]]):
            row, cells = entry
            key = []
            for expr, ascending in select.order_by:
                value = _order_value(expr, row, cells, columns, ev)
                token = _sort_token(value)
                key.append((token, ascending))
            # Encode descending by post-processing below.
            return key

        # Stable multi-key sort: apply keys right-to-left.
        for expr, ascending in reversed(select.order_by):
            raw_rows.sort(
                key=lambda entry: _sort_token(
                    _order_value(expr, entry[0], entry[1], columns, ev)
                ),
                reverse=not ascending,
            )

    rows = [cells for _, cells in raw_rows]
    if select.offset:
        rows = rows[select.offset:]
    if select.limit is not None:
        rows = rows[: select.limit]
    return Table(columns, rows)


def _order_value(
    expr: ast.Expr,
    row: Binding,
    cells: Tuple[Any, ...],
    columns: Sequence[str],
    ev: ExpressionEvaluator,
) -> Any:
    """An ORDER BY key: an output column by alias, or any expression."""
    if isinstance(expr, ast.Var) and expr.name in columns:
        return cells[list(columns).index(expr.name)]
    value = ev.evaluate(expr, row)
    return _normalize(value)


def _group(
    omega: BindingTable,
    group_by: Tuple[ast.Expr, ...],
    ev: ExpressionEvaluator,
) -> List[Tuple[Binding, BindingTable]]:
    """Partition *omega* by GROUP BY keys (single group when absent)."""
    if not group_by:
        representative = omega.rows[0] if omega.rows else Binding()
        return [(representative, omega)]
    groups = {}
    order: List[Tuple[Any, ...]] = []
    for row in omega:
        key = tuple(
            _sort_token(_normalize(ev.evaluate(expr, row))) for expr in group_by
        )
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    return [
        (groups[key][0], BindingTable(omega.columns, groups[key]))
        for key in sorted(order)
    ]
