"""SELECT evaluation — the tabular projection extension of Section 5.

``SELECT e1 AS a1, ... MATCH ...`` projects the binding set into a
:class:`~repro.table.Table`. Following the paper's sketch ("slicing,
sorting, and aggregation, similar to Cypher's RETURN clause"), we support
DISTINCT, GROUP BY, ORDER BY (ASC/DESC), LIMIT and OFFSET, and aggregate
items (with an implicit single group when no GROUP BY is given).

Projection and GROUP BY aggregation run vectorized by default: item
expressions compile to columnar kernels (:mod:`repro.eval.kernels`) that
evaluate whole column batches — grouping keys come from one kernel pass,
aggregates consume per-group column slices, plain-variable items read
their vector directly. The row-at-a-time path (per-row
:class:`~repro.eval.expressions.ExpressionEvaluator` calls) is retained
as the reference oracle behind ``ctx.use_vectorized()`` and produces
bit-identical tables — rows, order and columns (property-tested).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..algebra.binding import ABSENT, Binding, BindingTable
from ..lang import ast
from ..lang.pretty import pretty_expr
from ..table import Table
from .context import EvalContext
from .expressions import ExpressionEvaluator, expr_has_aggregate
from .kernels import ExpressionCompiler, GroupSpec, KernelContext

__all__ = ["evaluate_select"]


def _column_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    return pretty_expr(item.expr)


def _normalize(value: Any) -> Any:
    """Flatten evaluation results into table cells."""
    if isinstance(value, frozenset):
        if not value:
            return None
        if len(value) == 1:
            return next(iter(value))
        return value
    return value


def _sort_token(value: Any) -> Tuple[str, str]:
    return (type(value).__name__, str(value))


def evaluate_select(
    select: ast.SelectClause,
    omega: BindingTable,
    ctx: EvalContext,
) -> Table:
    """Evaluate a SELECT head over the binding set *omega*."""
    ev = ExpressionEvaluator(ctx)
    columns = [_column_name(item, i) for i, item in enumerate(select.items)]
    maxdom = omega.maximal_domain()
    aggregated = bool(select.group_by) or any(
        expr_has_aggregate(item.expr) for item in select.items
    )
    vectorized = ctx.use_vectorized()
    compiler = ExpressionCompiler(ctx) if vectorized else None

    # GROUP BY / ORDER BY may reference SELECT aliases; resolve them to
    # the underlying expressions before evaluation.
    aliases = {item.alias: item.expr for item in select.items if item.alias}
    group_exprs = tuple(
        aliases.get(expr.name, expr) if isinstance(expr, ast.Var) else expr
        for expr in select.group_by
    )

    # raw_rows pairs each output row with the omega row index backing it
    # (a group's representative when aggregated; None for the implicit
    # single group over an empty table) — ORDER BY re-reads it lazily.
    raw_rows: List[Tuple[Optional[int], Tuple[Any, ...]]] = []
    if aggregated:
        if vectorized and len(omega):
            kctx = KernelContext(omega, ctx, maximal_domain=maxdom)
            specs = [
                GroupSpec(indices[0], indices)
                for indices in _group_indices(omega, group_exprs, kctx, compiler)
            ]
            # Partial aggregation on the worker pool: groups partition
            # whole across morsels, chunk outputs concatenate back in
            # this group order (None = run serially below).
            from .parallel import parallel_grouped_cells

            cell_columns = parallel_grouped_cells(
                omega, specs, [item.expr for item in select.items], ctx,
                maxdom,
            )
            if cell_columns is not None:
                cell_columns = [
                    [_normalize(value) for value in column]
                    for column in cell_columns
                ]
            else:
                cell_columns = [
                    [
                        _normalize(value)
                        for value in compiler.compile_grouped(item.expr)(
                            kctx, specs
                        )
                    ]
                    for item in select.items
                ]
            raw_rows = [
                (spec.representative, tuple(column[j] for column in cell_columns))
                for j, spec in enumerate(specs)
            ]
        else:
            for rep_index, group in _group(omega, group_exprs, ev):
                representative = (
                    omega.row_at(rep_index) if rep_index is not None else Binding()
                )
                cells = tuple(
                    _normalize(
                        ev.evaluate(
                            item.expr, representative, group=group,
                            maximal_domain=maxdom,
                        )
                    )
                    for item in select.items
                )
                raw_rows.append((rep_index, cells))
    else:
        # Batch projection: plain-variable items read their column
        # vector directly; other expressions run one compiled kernel
        # per item (or evaluate per row on the oracle path).
        nrows = len(omega)
        all_rows = list(range(nrows))
        kctx = KernelContext(omega, ctx) if vectorized else None
        cell_columns = []
        for item in select.items:
            vector = _column_fast_path(omega, item.expr)
            if vector is None:
                if vectorized:
                    vector = [
                        _normalize(value)
                        for value in compiler.compile(item.expr)(kctx, all_rows)
                    ]
                else:
                    vector = [
                        _normalize(ev.evaluate(item.expr, row))
                        for row in omega.rows
                    ]
            cell_columns.append(vector)
        raw_rows = [
            (i, tuple(column[i] for column in cell_columns)) for i in range(nrows)
        ]

    if select.distinct:
        seen = set()
        unique: List[Tuple[Optional[int], Tuple[Any, ...]]] = []
        for row, cells in raw_rows:
            key = tuple(_sort_token(c) for c in cells)
            if key not in seen:
                seen.add(key)
                unique.append((row, cells))
        raw_rows = unique

    if select.order_by:
        # Stable multi-key sort: apply keys right-to-left.
        for expr, ascending in reversed(select.order_by):
            raw_rows.sort(
                key=lambda entry: _sort_token(
                    _order_value(expr, entry[0], entry[1], columns, ev, omega)
                ),
                reverse=not ascending,
            )

    rows = [cells for _, cells in raw_rows]
    if select.offset:
        rows = rows[select.offset:]
    if select.limit is not None:
        rows = rows[: select.limit]
    return Table(columns, rows)


def _order_value(
    expr: ast.Expr,
    row_index: Optional[int],
    cells: Tuple[Any, ...],
    columns: List[str],
    ev: ExpressionEvaluator,
    omega: BindingTable,
) -> Any:
    """An ORDER BY key: an output column by alias, or any expression."""
    if isinstance(expr, ast.Var) and expr.name in columns:
        return cells[columns.index(expr.name)]
    row = omega.row_at(row_index) if row_index is not None else Binding()
    return _normalize(ev.evaluate(expr, row))


def _column_fast_path(omega: BindingTable, expr: ast.Expr) -> Optional[List[Any]]:
    """The normalized value vector of a plain, fully-bound variable.

    Returns None when *expr* is not a variable or the variable is absent
    in some row — those cases keep the expression-evaluation path (and
    its error behaviour for unbound variables).
    """
    if not isinstance(expr, ast.Var):
        return None
    vector = omega.column_values(expr.name)
    if vector is None or any(value is ABSENT for value in vector):
        return None
    return [_normalize(value) for value in vector]


def _group_keys(
    omega: BindingTable,
    group_by: Tuple[ast.Expr, ...],
    evaluate_column,
) -> List[List[int]]:
    """Partition row indices by GROUP BY key columns (shared core).

    ``evaluate_column(expr)`` supplies the value vector of one grouping
    expression; groups come back sorted by their tokenized keys so both
    evaluation modes produce the identical group order.
    """
    key_columns: List[List[Tuple[str, str]]] = []
    for expr in group_by:
        vector = _column_fast_path(omega, expr)
        if vector is not None:
            key_columns.append([_sort_token(value) for value in vector])
        else:
            key_columns.append(
                [_sort_token(_normalize(value)) for value in evaluate_column(expr)]
            )
    groups: dict = {}
    order: List[Tuple[Any, ...]] = []
    for index in range(len(omega)):
        key = tuple(column[index] for column in key_columns)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(index)
    return [groups[key] for key in sorted(order)]


def _group_indices(
    omega: BindingTable,
    group_by: Tuple[ast.Expr, ...],
    kctx: KernelContext,
    compiler: ExpressionCompiler,
) -> List[List[int]]:
    """Vectorized grouping: key columns from one kernel pass each."""
    if not group_by:
        return [list(range(len(omega)))]
    all_rows = list(range(len(omega)))
    return _group_keys(
        omega, group_by, lambda expr: compiler.compile(expr)(kctx, all_rows)
    )


def _group(
    omega: BindingTable,
    group_by: Tuple[ast.Expr, ...],
    ev: ExpressionEvaluator,
) -> List[Tuple[Optional[int], BindingTable]]:
    """Partition *omega* by GROUP BY keys (single group when absent).

    Returns ``(representative row index, group sub-table)`` pairs; the
    representative index is None only for the implicit single group over
    an empty table.
    """
    if not group_by:
        return [(0 if len(omega) else None, omega)]
    partitions = _group_keys(
        omega,
        group_by,
        lambda expr: [ev.evaluate(expr, row) for row in omega.rows],
    )
    return [(indices[0], omega.select_rows(indices)) for indices in partitions]
