"""SELECT evaluation — the tabular projection extension of Section 5.

``SELECT e1 AS a1, ... MATCH ...`` projects the binding set into a
:class:`~repro.table.Table`. Following the paper's sketch ("slicing,
sorting, and aggregation, similar to Cypher's RETURN clause"), we support
DISTINCT, GROUP BY, ORDER BY (ASC/DESC), LIMIT and OFFSET, and aggregate
items (with an implicit single group when no GROUP BY is given).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..algebra.binding import ABSENT, Binding, BindingTable
from ..lang import ast
from ..lang.pretty import pretty_expr
from ..table import Table
from .context import EvalContext
from .expressions import ExpressionEvaluator, expr_has_aggregate

__all__ = ["evaluate_select"]


def _column_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    return pretty_expr(item.expr)


def _normalize(value: Any) -> Any:
    """Flatten evaluation results into table cells."""
    if isinstance(value, frozenset):
        if not value:
            return None
        if len(value) == 1:
            return next(iter(value))
        return value
    return value


def _sort_token(value: Any) -> Tuple[str, str]:
    return (type(value).__name__, str(value))


def evaluate_select(
    select: ast.SelectClause,
    omega: BindingTable,
    ctx: EvalContext,
) -> Table:
    """Evaluate a SELECT head over the binding set *omega*."""
    ev = ExpressionEvaluator(ctx)
    columns = [_column_name(item, i) for i, item in enumerate(select.items)]
    maxdom = omega.maximal_domain()
    aggregated = bool(select.group_by) or any(
        expr_has_aggregate(item.expr) for item in select.items
    )

    # GROUP BY / ORDER BY may reference SELECT aliases; resolve them to
    # the underlying expressions before evaluation.
    aliases = {
        item.alias: item.expr for item in select.items if item.alias
    }
    group_exprs = tuple(
        aliases.get(expr.name, expr) if isinstance(expr, ast.Var) else expr
        for expr in select.group_by
    )

    raw_rows: List[Tuple[Binding, Tuple[Any, ...]]] = []
    if aggregated:
        groups = _group(omega, group_exprs, ev)
        for representative, group in groups:
            cells = tuple(
                _normalize(
                    ev.evaluate(
                        item.expr, representative, group=group,
                        maximal_domain=maxdom,
                    )
                )
                for item in select.items
            )
            raw_rows.append((representative, cells))
    else:
        # Batch projection: plain-variable items read their column
        # vector directly; everything else evaluates per row.
        rows = omega.rows
        cell_columns: List[List[Any]] = []
        for item in select.items:
            vector = _column_fast_path(omega, item.expr)
            if vector is None:
                vector = [
                    _normalize(ev.evaluate(item.expr, row)) for row in rows
                ]
            cell_columns.append(vector)
        raw_rows = [
            (rows[i], tuple(column[i] for column in cell_columns))
            for i in range(len(rows))
        ]

    if select.distinct:
        seen = set()
        unique: List[Tuple[Binding, Tuple[Any, ...]]] = []
        for row, cells in raw_rows:
            key = tuple(_sort_token(c) for c in cells)
            if key not in seen:
                seen.add(key)
                unique.append((row, cells))
        raw_rows = unique

    if select.order_by:
        def order_key(entry: Tuple[Binding, Tuple[Any, ...]]):
            row, cells = entry
            key = []
            for expr, ascending in select.order_by:
                value = _order_value(expr, row, cells, columns, ev)
                token = _sort_token(value)
                key.append((token, ascending))
            # Encode descending by post-processing below.
            return key

        # Stable multi-key sort: apply keys right-to-left.
        for expr, ascending in reversed(select.order_by):
            raw_rows.sort(
                key=lambda entry: _sort_token(
                    _order_value(expr, entry[0], entry[1], columns, ev)
                ),
                reverse=not ascending,
            )

    rows = [cells for _, cells in raw_rows]
    if select.offset:
        rows = rows[select.offset:]
    if select.limit is not None:
        rows = rows[: select.limit]
    return Table(columns, rows)


def _order_value(
    expr: ast.Expr,
    row: Binding,
    cells: Tuple[Any, ...],
    columns: Sequence[str],
    ev: ExpressionEvaluator,
) -> Any:
    """An ORDER BY key: an output column by alias, or any expression."""
    if isinstance(expr, ast.Var) and expr.name in columns:
        return cells[list(columns).index(expr.name)]
    value = ev.evaluate(expr, row)
    return _normalize(value)


def _column_fast_path(
    omega: BindingTable, expr: ast.Expr
) -> Optional[List[Any]]:
    """The normalized value vector of a plain, fully-bound variable.

    Returns None when *expr* is not a variable or the variable is absent
    in some row — those cases keep the per-row evaluation path (and its
    error behaviour for unbound variables).
    """
    if not isinstance(expr, ast.Var):
        return None
    vector = omega.column_values(expr.name)
    if vector is None or any(value is ABSENT for value in vector):
        return None
    return [_normalize(value) for value in vector]


def _group(
    omega: BindingTable,
    group_by: Tuple[ast.Expr, ...],
    ev: ExpressionEvaluator,
) -> List[Tuple[Binding, BindingTable]]:
    """Partition *omega* by GROUP BY keys (single group when absent)."""
    if not group_by:
        representative = omega.rows[0] if len(omega) else Binding()
        return [(representative, omega)]
    key_columns: List[List[str]] = []
    for expr in group_by:
        vector = _column_fast_path(omega, expr)
        if vector is not None:
            key_columns.append([_sort_token(value) for value in vector])
        else:
            key_columns.append(
                [
                    _sort_token(_normalize(ev.evaluate(expr, row)))
                    for row in omega.rows
                ]
            )
    groups: dict = {}
    order: List[Tuple[Any, ...]] = []
    for index in range(len(omega)):
        key = tuple(column[index] for column in key_columns)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(index)
    return [
        (omega.row_at(groups[key][0]), omega.select_rows(groups[key]))
        for key in sorted(order)
    ]
