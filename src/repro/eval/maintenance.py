"""Incremental maintenance of materialized GRAPH VIEWs.

G-CORE's closure property makes views first-class: ``GRAPH VIEW v AS
(CONSTRUCT ... MATCH ...)`` materializes a graph that other queries
reference by name. This module keeps those materializations up to date
under the mutation layer (:mod:`repro.model.delta`) without recomputing
them from scratch on every update.

Strategy
--------

:func:`analyze_view` statically classifies a view query:

* **incremental** — a single conjunctive MATCH block (named node
  patterns, node/edge atoms only, no OPTIONAL, no EXISTS/pattern
  predicates in WHERE) over one base graph, whose CONSTRUCT items are
  pure identity projections of bound variables
  (:func:`~repro.eval.construct.identity_item_spec`). For these the view
  graph is a *support-counted* union of matched objects, and a delta can
  be propagated exactly:

  1. every binding row affected by a delta binds at least one *touched
     node* (delta'd nodes plus endpoints of delta'd edges), so
     :func:`~repro.eval.match.match_rows_touching` computes the removed
     rows (old graph) and added rows (new graph) by seeding the columnar
     hash-join pipeline with the touched nodes — cost proportional to the
     delta, not the graph;
  2. the rows' identity outputs adjust per-object support counts
     (:class:`ViewState`); objects dropping to zero leave the view,
     objects gaining support enter it;
  3. the materialized graph is *patched* through
     :meth:`PathPropertyGraph._assemble_normalized`, refreshing labels
     and properties of touched survivors from the new base graph.

* **full** — everything else (path atoms, aggregates/SET, OPTIONAL, set
  operations, skolemizing constructs, multi-graph patterns, ...) falls
  back to from-scratch recomputation, which stays the reference oracle;
  the property suite proves incremental == full on eligible views.

Runtime guards double-check the static plan: if a dependency was replaced
wholesale (``register_graph``), the changelog lost continuity, or support
counts would go inconsistent, the refresh silently falls back to the full
recompute. ``EXPLAIN`` prints the chosen strategy via
:func:`describe_strategy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..algebra.binding import ABSENT, BindingTable
from ..errors import SemanticError, UnknownGraphError
from ..lang import ast
from ..model.graph import ObjectId, PathPropertyGraph
from .construct import identity_item_spec
from .context import EvalContext
from .match import evaluate_match, match_rows_touching

__all__ = [
    "ViewPlan",
    "ViewState",
    "analyze_view",
    "view_dependencies",
    "query_uses_default",
    "build_state",
    "describe_strategy",
    "materialize_view",
    "refresh_view",
]

#: One construct item's identity projection: (node variables, edge variables).
ItemSpec = Tuple[Tuple[str, ...], Tuple[str, ...]]


@dataclass(frozen=True)
class ViewPlan:
    """The static maintenance analysis of one view query."""

    strategy: str  # "incremental" | "full"
    reason: str
    deps: Tuple[str, ...]
    base: Optional[str] = None
    node_vars: Tuple[str, ...] = ()
    items: Tuple[ItemSpec, ...] = ()
    #: True when some pattern omits ON — the base was resolved through
    #: the default-graph pointer, so a later set_default_graph changes
    #: the view's meaning (incremental refresh must then fall back).
    uses_default: bool = False


class ViewState:
    """Per-object support counts of an incrementally-maintained view.

    ``support[obj]`` is the number of (construct item, binding row) pairs
    whose identity projection emits *obj*; an object belongs to the view
    iff its support is positive. Kept on the catalog's view metadata and
    adjusted in place by every incremental refresh.
    """

    __slots__ = ("support",)

    def __init__(self) -> None:
        self.support: Dict[ObjectId, int] = {}

    def __repr__(self) -> str:
        return f"<ViewState {len(self.support)} supported objects>"


# ---------------------------------------------------------------------------
# Dependency analysis
# ---------------------------------------------------------------------------

def _collect_refs(node: Any, refs: Set[str], flags: Dict[str, bool]) -> None:
    if isinstance(node, ast.PatternLocation):
        if node.on is None:
            flags["default"] = True
        elif isinstance(node.on, str):
            refs.add(node.on)
        else:
            _collect_refs(node.on, refs, flags)
        _collect_refs(node.chain, refs, flags)
        return
    if isinstance(node, (ast.GraphRefQuery, ast.GraphRefItem)):
        refs.add(node.name)
        return
    if isinstance(node, ast.BasicQuery) and node.from_table is not None:
        refs.add(node.from_table)
    if hasattr(node, "__dataclass_fields__"):
        for name in node.__dataclass_fields__:
            _collect_refs(getattr(node, name), refs, flags)
    elif isinstance(node, (tuple, list, frozenset)):
        for item in node:
            _collect_refs(item, refs, flags)


def view_dependencies(query: ast.Query, catalog) -> FrozenSet[str]:
    """The catalog names a view's materialization depends on.

    Conservative over-approximation: every graph/table name referenced
    anywhere in the query (pattern locations, set operations, construct
    unions, FROM imports, EXISTS subqueries), plus the default graph when
    any pattern omits ``ON``. Names that do not resolve in the catalog
    (query-local GRAPH bindings, typos that would fail evaluation) are
    dropped. Over-approximation only costs spurious refreshes, never
    stale reads.
    """
    refs: Set[str] = set()
    flags = {"default": False}
    _collect_refs(query, refs, flags)
    if flags["default"] and catalog.default_graph_name is not None:
        refs.add(catalog.default_graph_name)
    return frozenset(name for name in refs if catalog.has_graph(name))


def query_uses_default(query: ast.Query) -> bool:
    """True when any pattern of *query* resolves through the default graph.

    Such a view's meaning moves with ``set_default_graph``; the catalog
    records the default name at materialization time and reports the view
    stale when the pointer later changes.
    """
    refs: Set[str] = set()
    flags = {"default": False}
    _collect_refs(query, refs, flags)
    return flags["default"]


def _contains_subquery(expr: Any) -> bool:
    if isinstance(expr, (ast.ExistsQuery, ast.ExistsPattern)):
        return True
    if hasattr(expr, "__dataclass_fields__"):
        return any(
            _contains_subquery(getattr(expr, name))
            for name in expr.__dataclass_fields__
        )
    if isinstance(expr, (tuple, list, frozenset)):
        return any(_contains_subquery(item) for item in expr)
    return False


# ---------------------------------------------------------------------------
# Eligibility analysis
# ---------------------------------------------------------------------------

def analyze_view(query: ast.Query, catalog) -> ViewPlan:
    """Classify a view query as incrementally maintainable or not."""
    deps = tuple(sorted(view_dependencies(query, catalog)))
    plan = _incremental_plan(query, catalog, deps)
    if isinstance(plan, ViewPlan):
        return plan
    return ViewPlan("full", plan, deps)


def _incremental_plan(query, catalog, deps):
    """A :class:`ViewPlan` when eligible, else the ineligibility reason."""
    if query.heads:
        return "query-local GRAPH/PATH head clauses"
    body = query.body
    if not isinstance(body, ast.BasicQuery):
        return "set operation or graph reference body"
    if body.from_table is not None:
        return "FROM table import"
    if not isinstance(body.head, ast.ConstructClause):
        return "SELECT head (tables are not materialized views)"
    if body.match is None:
        return "no MATCH clause"
    if body.match.optionals:
        return "OPTIONAL blocks (left outer join is not monotone)"
    block = body.match.block
    base: Optional[str] = None
    uses_default = False
    for location in block.patterns:
        if location.on is None:
            name = catalog.default_graph_name
            uses_default = True
        elif isinstance(location.on, str):
            name = location.on
        else:
            return "ON (subquery) pattern location"
        if name is None:
            return "no default graph to resolve an ON-less pattern"
        if base is None:
            base = name
        elif base != name:
            return "patterns over multiple graphs"
    if base is None or not catalog.is_base_graph(base):
        return f"target {base!r} is not a mutable base graph"
    node_vars: List[str] = []
    edge_orientations: Dict[str, Tuple[str, str]] = {}
    for location in block.patterns:
        chain = location.chain
        chain_nodes: List[str] = []
        for element in chain.nodes():
            if element.var is None:
                return "anonymous node pattern (cannot be delta-seeded)"
            chain_nodes.append(element.var)
            node_vars.append(element.var)
        for index, connector in enumerate(chain.connectors()):
            if isinstance(connector, ast.PathPatternElem):
                return "path pattern atom (non-local reachability)"
            if connector.direction == ast.UNDIRECTED:
                return "undirected edge pattern"
            if connector.var:
                if connector.direction == ast.OUT:
                    effective = (chain_nodes[index], chain_nodes[index + 1])
                else:
                    effective = (chain_nodes[index + 1], chain_nodes[index])
                previous = edge_orientations.get(connector.var)
                if previous is not None and previous != effective:
                    return "edge variable reused between different endpoints"
                edge_orientations[connector.var] = effective
    if block.where is not None and _contains_subquery(block.where):
        return "EXISTS / pattern predicate in WHERE (non-local)"
    match_node_vars = frozenset(node_vars)
    items: List[ItemSpec] = []
    for item in body.head.items:
        if isinstance(item, ast.GraphRefItem):
            return "graph union item in CONSTRUCT"
        spec = identity_item_spec(item, match_node_vars, edge_orientations)
        if spec is None:
            return (
                "non-identity construct item (aggregates, SET/REMOVE, "
                "WHEN, labels, copies or unbound variables)"
            )
        items.append(spec)
    return ViewPlan(
        "incremental",
        "join-delta over touched bindings",
        deps,
        base=base,
        node_vars=tuple(dict.fromkeys(node_vars)),
        items=tuple(items),
        uses_default=uses_default,
    )


def describe_strategy(plan: ViewPlan) -> str:
    """The one-line strategy report EXPLAIN and the REPL print."""
    if plan.strategy == "incremental":
        return "incremental (join-delta over touched bindings)"
    return f"full recompute ({plan.reason})"


# ---------------------------------------------------------------------------
# Support counting
# ---------------------------------------------------------------------------

def _tally(
    plan: ViewPlan,
    table: BindingTable,
    sign: int,
    counts: Dict[ObjectId, int],
) -> None:
    """Accumulate per-object support changes of *table*'s identity rows."""
    nrows = len(table)
    if not nrows:
        return
    for item_nodes, item_edges in plan.items:
        vectors = [
            table.column_values(var) for var in (*item_nodes, *item_edges)
        ]
        if any(vector is None for vector in vectors):
            continue  # a variable the table never stored: no productions
        for index in range(nrows):
            objects = {vector[index] for vector in vectors}
            objects.discard(ABSENT)  # eligible blocks bind totally; guard
            for obj in objects:
                counts[obj] = counts.get(obj, 0) + sign


def build_state(plan: ViewPlan, omega: BindingTable) -> ViewState:
    """Support counts of an eligible view from its full binding table."""
    state = ViewState()
    _tally(plan, omega, +1, state.support)
    return state


# ---------------------------------------------------------------------------
# Refresh
# ---------------------------------------------------------------------------

def refresh_view(
    name: str, ctx: EvalContext, incremental: bool = True
) -> Tuple[PathPropertyGraph, str]:
    """Bring view *name* up to date; returns (graph, strategy used).

    The strategy is ``"unchanged"`` (no dependency moved — the cached
    materialization is returned as-is), ``"incremental"`` (the
    materialization was patched from the dependency changelog) or
    ``"full"`` (from-scratch recomputation, also the ``incremental=False``
    reference oracle).
    """
    catalog = ctx.catalog
    query = catalog.view_query(name)
    if query is None:
        raise UnknownGraphError(name)
    meta = catalog.view_meta(name)
    plan = meta.plan if meta is not None and meta.plan is not None else None
    if plan is None:
        plan = analyze_view(query, catalog)
    if incremental and meta is not None and not catalog.is_view_stale(name):
        return catalog.graph(name), "unchanged"
    if incremental and plan.strategy == "incremental" and meta is not None:
        patched = _incremental_refresh(name, query, plan, meta, ctx)
        if patched is not None:
            return patched, "incremental"
    return _full_refresh(name, query, plan, ctx), "full"


def materialize_view(
    name: str,
    query: ast.Query,
    ctx: EvalContext,
    plan: Optional[ViewPlan] = None,
    error: Optional[str] = None,
) -> PathPropertyGraph:
    """Evaluate *query*, register it as view *name*, and return the graph.

    The single registration path shared by GRAPH VIEW statements and
    full refreshes: incrementally-maintainable queries capture their
    MATCH binding table through ``ctx.omega_sink`` (exactly one
    top-level table) and store the support counts alongside the
    materialization.
    """
    from .query import evaluate_query  # local import: cycle

    if plan is None:
        plan = analyze_view(query, ctx.catalog)
    sink: Optional[List[BindingTable]] = (
        [] if plan.strategy == "incremental" else None
    )
    ctx.omega_sink = sink
    try:
        result = evaluate_query(query, ctx)
    finally:
        ctx.omega_sink = None
    if not isinstance(result, PathPropertyGraph):
        raise SemanticError(error or f"view {name!r} did not produce a graph")
    state = (
        build_state(plan, sink[0]) if sink is not None and len(sink) == 1
        else None
    )
    ctx.catalog.register_view(name, query, result, plan=plan, state=state)
    return result


def _full_refresh(name, query, plan, ctx) -> PathPropertyGraph:
    return materialize_view(name, query, ctx, plan=plan)


def _ctx_over(
    ctx: EvalContext, name: str, graph: PathPropertyGraph
) -> EvalContext:
    """A fresh context that resolves *name* (and ON-less patterns) to
    *graph* — used to evaluate against dependency snapshots."""
    scoped = EvalContext(ctx.catalog, ctx.ids)
    scoped.local_graphs[name] = graph
    scoped.current_graph = graph
    return scoped


def _incremental_refresh(
    name, query, plan: ViewPlan, meta, ctx: EvalContext
) -> Optional[PathPropertyGraph]:
    """Patch the materialization from the changelog; None = fall back."""
    catalog = ctx.catalog
    dep = plan.base
    if plan.uses_default and catalog.default_graph_name != dep:
        return None  # ON-less patterns now mean a different graph
    for other, epoch in meta.deps.items():
        if other != dep and catalog.epoch(other) != epoch:
            return None  # a non-base dependency moved: recompute
    records = [
        record
        for record in catalog.changelog(dep)
        if record.epoch > meta.deps.get(dep, 0)
    ]
    if not records or any(record.kind != "delta" for record in records):
        return None  # replaced wholesale (or nothing to see): recompute
    old_graph = meta.snapshots.get(dep)
    if old_graph is None or records[0].before is not old_graph:
        return None  # changelog does not start at our snapshot
    for previous, following in zip(records, records[1:]):
        if following.before is not previous.after:
            return None  # discontinuous history
    new_graph = catalog.base_graph(dep)
    if records[-1].after is not new_graph:
        return None

    state = meta.state
    if state is None:
        # The view predates support tracking (or was registered through a
        # path that could not capture its binding table): build the
        # counts once from the snapshot, then patch as usual.
        omega_old = evaluate_match(
            query.body.match, _ctx_over(ctx, dep, old_graph)
        )
        state = build_state(plan, omega_old)

    touched: Set[ObjectId] = set()
    touched_nodes: Set[ObjectId] = set()
    for record in records:
        touched |= record.effects.touched
        touched_nodes |= record.effects.touched_nodes

    block = query.body.match.block
    removed_rows = match_rows_touching(
        block, _ctx_over(ctx, dep, old_graph), plan.node_vars, touched_nodes
    )
    added_rows = match_rows_touching(
        block, _ctx_over(ctx, dep, new_graph), plan.node_vars, touched_nodes
    )

    changes: Dict[ObjectId, int] = {}
    _tally(plan, removed_rows, -1, changes)
    _tally(plan, added_rows, +1, changes)
    support = state.support
    dropped: Set[ObjectId] = set()
    entered: Set[ObjectId] = set()
    for obj, change in changes.items():
        before = support.get(obj, 0)
        after = before + change
        if after < 0:
            return None  # inconsistent counts: rebuild via full recompute
        if before > 0 and after == 0:
            dropped.add(obj)
        elif before == 0 and after > 0:
            entered.add(obj)
    for obj, change in changes.items():
        updated = support.get(obj, 0) + change
        if updated > 0:
            support[obj] = updated
        else:
            support.pop(obj, None)

    old_view = catalog.graph(name)
    nodes = set(old_view.nodes)
    edges = dict(old_view.rho)
    paths = dict(old_view.delta)
    labels = old_view.label_map()
    props = old_view.property_map()

    def refresh_annotations(obj: ObjectId) -> None:
        current_labels = new_graph.labels(obj)
        if current_labels:
            labels[obj] = current_labels
        else:
            labels.pop(obj, None)
        current_props = new_graph.properties(obj)
        if current_props:
            props[obj] = current_props
        else:
            props.pop(obj, None)

    for obj in dropped:
        nodes.discard(obj)
        edges.pop(obj, None)
        labels.pop(obj, None)
        props.pop(obj, None)
    for obj in entered:
        if obj in new_graph.edges:
            edges[obj] = new_graph.endpoints(obj)
        else:
            nodes.add(obj)
        refresh_annotations(obj)
    for obj in touched:
        if obj in entered or obj in dropped:
            continue
        if obj in nodes or obj in edges:
            refresh_annotations(obj)

    result = PathPropertyGraph._assemble_normalized(
        frozenset(nodes), edges, paths, labels, props, name=name
    )
    catalog.register_view(name, query, result, plan=plan, state=state)
    return result
