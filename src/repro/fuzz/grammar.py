"""The generator's grammar weights and catalog-derived vocabulary.

The grammar itself lives in :mod:`repro.fuzz.generate` as recursive
productions; this module owns the two inputs that shape it:

* :data:`DEFAULT_WEIGHTS` — one flat ``production -> weight`` table.
  Weights are relative probabilities (feature toggles are drawn as
  ``rng.random() < weight``; alternative sets are drawn proportionally),
  so the table doubles as the documentation of what the generator can
  emit (``docs/fuzzing.md``).
* :class:`Vocabulary` — the names and scalar values the generator is
  allowed to mention, derived from a live engine's catalog so that
  generated statements resolve (the analyzer-clean filter would discard
  statements over unknown names anyway; drawing from the catalog keeps
  the acceptance rate high).

Everything here is deterministic: name lists are sorted, value pools are
sorted by ``(type, repr)``, and no iteration order of a set or dict ever
leaks into the vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..model.values import Date, Scalar

__all__ = ["DEFAULT_WEIGHTS", "GraphVocab", "Vocabulary", "scalar_sort_key"]


#: Relative weights of every grammar production the generator knows.
#: Toggles (``x.y``) are probabilities in [0, 1]; alternative groups
#: (``x.y.*``) are normalized over the group members.
DEFAULT_WEIGHTS: Dict[str, float] = {
    # ---- statement / query level -------------------------------------
    "head.select": 0.55,  # vs CONSTRUCT
    "query.path_clause": 0.10,  # PATH name = ... head
    "query.graph_clause": 0.06,  # GRAPH name AS (...) head
    "body.setop": 0.10,  # UNION/INTERSECT/MINUS of graph queries
    "setop.union": 0.50,
    "setop.intersect": 0.25,
    "setop.minus": 0.25,
    "body.graph_ref": 0.05,  # a bare graph name as a set-op operand
    "basic.from_table": 0.08,  # SELECT ... FROM table
    # ---- MATCH --------------------------------------------------------
    "match.extra_pattern": 0.25,  # a second comma pattern in the block
    "match.optional": 0.20,  # an OPTIONAL block
    "match.where": 0.60,
    "match.on": 0.22,  # explicit ON graph for a pattern
    "chain.extend": 0.50,  # add another connector+node to a chain
    "connector.path": 0.28,  # a path connector (vs an edge)
    # ---- node / edge patterns ----------------------------------------
    "node.var": 0.85,
    "node.label": 0.55,
    "node.second_label": 0.10,
    "node.prop_test": 0.22,
    "node.prop_bind": 0.08,
    "edge.var": 0.45,
    "edge.label": 0.70,
    "edge.prop_test": 0.10,
    "edge.in": 0.22,  # <-[...]-
    "edge.undirected": 0.12,  # -[...]-
    # ---- path connectors ---------------------------------------------
    "path.mode.shortest": 0.55,
    "path.mode.kshortest": 0.18,
    "path.mode.all": 0.15,
    "path.mode.reach": 0.12,
    "path.var": 0.60,
    "path.cost_var": 0.22,
    "path.stored": 0.10,  # -/@p .../-> stored-path match
    # ---- regular path expressions ------------------------------------
    "regex.label": 0.46,
    "regex.any": 0.06,
    "regex.node_test": 0.05,
    "regex.view": 0.08,
    "regex.concat": 0.14,
    "regex.alt": 0.11,
    "regex.star": 0.04,
    "regex.plus": 0.04,
    "regex.opt": 0.05,
    "regex.repeat": 0.05,
    "regex.inverse": 0.12,  # :label^ / _^
    # ---- SELECT -------------------------------------------------------
    "select.distinct": 0.22,
    "select.extra_item": 0.55,
    "select.alias": 0.75,
    "select.group_by": 0.20,
    "select.aggregate": 0.35,  # aggregate head without GROUP BY
    "select.order_by": 0.35,
    "select.order_desc": 0.35,
    "select.limit": 0.25,
    "select.offset": 0.30,  # only drawn when limit is present
    # ---- CONSTRUCT ----------------------------------------------------
    "construct.extra_item": 0.20,
    "construct.graph_ref": 0.10,  # a bare graph name union item
    "construct.fresh_node": 0.35,  # build a new node (vs reusing a var)
    "construct.edge": 0.45,  # connect two construct nodes
    "construct.when": 0.22,
    "construct.set": 0.18,
    "construct.remove": 0.08,
    "construct.group": 0.10,  # explicit GROUP key on a fresh node
    "construct.prop_assign": 0.35,  # {k := expr} on a construct element
    # ---- expressions --------------------------------------------------
    "expr.binary_bool": 0.45,  # AND/OR/XOR split while depth remains
    "expr.not": 0.10,
    "expr.exists_pattern": 0.07,
    "expr.exists_query": 0.04,
    "expr.label_test": 0.10,
    "expr.case": 0.06,
    "expr.func": 0.18,
    "expr.param_literal": 0.22,  # draw a $param instead of an inline literal
    "expr.prop_vs_prop": 0.12,  # compare two properties
    "cmp.eq": 0.40,
    "cmp.neq": 0.12,
    "cmp.lt": 0.12,
    "cmp.le": 0.08,
    "cmp.gt": 0.12,
    "cmp.ge": 0.08,
    "cmp.in": 0.08,
    # ---- literal value lattice ---------------------------------------
    "lit.bool": 0.08,
    "lit.int": 0.30,
    "lit.float": 0.14,
    "lit.str": 0.34,
    "lit.date": 0.08,
    "lit.set": 0.06,  # only reachable through a $param (no set syntax)
    # ---- fault injection ---------------------------------------------
    "fault.unknown_name": 0.03,  # misspell a graph/table/view name
}


def scalar_sort_key(value: Scalar) -> Tuple[str, str]:
    """A total, version-stable order over mixed scalar pools."""
    return (type(value).__name__, repr(value))


@dataclass(frozen=True)
class GraphVocab:
    """The name/value surface of one registered graph."""

    name: str
    node_labels: Tuple[str, ...]
    edge_labels: Tuple[str, ...]
    path_labels: Tuple[str, ...]
    prop_keys: Tuple[str, ...]
    #: per-key sorted scalar pools drawn for property equality tests
    prop_values: Tuple[Tuple[str, Tuple[Scalar, ...]], ...]

    def values_for(self, key: str) -> Tuple[Scalar, ...]:
        for name, values in self.prop_values:
            if name == key:
                return values
        return ()

    @classmethod
    def from_graph(cls, name: str, graph) -> "GraphVocab":
        stats = graph.statistics()
        pools: Dict[str, List[Scalar]] = {}
        for props in graph.property_map().values():
            for key, values in props.items():
                pool = pools.setdefault(key, [])
                for value in values:
                    if value not in pool:
                        pool.append(value)
        prop_values = tuple(
            (key, tuple(sorted(pool, key=scalar_sort_key)[:8]))
            for key, pool in sorted(pools.items())
        )
        return cls(
            name=name,
            node_labels=tuple(sorted(stats.node_label_counts)),
            edge_labels=tuple(sorted(stats.edge_label_counts)),
            path_labels=tuple(sorted(stats.path_label_counts)),
            prop_keys=tuple(sorted(pools)),
            prop_values=prop_values,
        )


@dataclass(frozen=True)
class Vocabulary:
    """Everything the generator may name: graphs, tables, views, values."""

    graphs: Tuple[GraphVocab, ...]
    default_graph: str
    tables: Tuple[Tuple[str, Tuple[str, ...]], ...]  # (name, columns)
    path_views: Tuple[str, ...]
    #: extra dates for the Date lane of the value lattice
    dates: Tuple[Date, ...] = field(
        default=(Date(1999, 1, 17), Date(2002, 10, 1), Date(2014, 12, 1))
    )

    def graph_named(self, name: str) -> GraphVocab:
        for graph in self.graphs:
            if graph.name == name:
                return graph
        return self.graphs[0]

    @property
    def graph_names(self) -> Tuple[str, ...]:
        return tuple(graph.name for graph in self.graphs)

    @classmethod
    def from_engine(cls, engine) -> "Vocabulary":
        """Derive the vocabulary from an engine's registered catalog."""
        catalog = engine.catalog
        graphs = tuple(
            GraphVocab.from_graph(name, catalog.graph(name))
            for name in sorted(catalog.graph_names())
        )
        if not graphs:
            raise ValueError("fuzzing needs at least one registered graph")
        default = getattr(catalog, "default_graph_name", None) or graphs[0].name
        tables = tuple(
            (name, tuple(catalog.table(name).columns))
            for name in sorted(catalog.table_names())
        )
        path_views = tuple(sorted(catalog.path_view_names()))
        return cls(
            graphs=graphs,
            default_graph=default,
            tables=tables,
            path_views=path_views,
        )
