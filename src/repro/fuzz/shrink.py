"""Delta-debugging reduction of a diverging statement.

:func:`shrink_case` greedily minimizes a counterexample while a caller-
supplied predicate ("still diverges") holds. Reduction happens on the
AST — the pretty-printer round-trip (``parse(pretty(s)) == s``) means
every candidate is guaranteed parseable — in three waves of decreasing
granularity, exactly the ladder the issue prescribes:

1. **drop clauses** — PATH/GRAPH heads, set-op branches, OPTIONAL
   blocks, extra comma patterns, WHERE, construct sub-clauses
   (WHEN/SET/REMOVE), SELECT modifiers (DISTINCT/GROUP BY/ORDER BY/
   LIMIT/OFFSET) and surplus items;
2. **drop atoms** — shorten chains from the tail, strip labels,
   property tests and bindings off nodes and edges, collapse a path
   connector to a plain edge, un-store paths, drop cost variables;
3. **simplify expressions and literals** — replace boolean combinators
   by their operands, CASE by its condition, function calls by their
   argument, inline ``$params`` whose value has literal syntax, shrink
   int/float/str literals toward ``0`` / ``''``.

Each accepted candidate restarts the wave (classic greedy ddmin); the
total number of predicate evaluations is capped by ``max_checks`` so a
pathological predicate cannot stall a fuzzing session. Unreferenced
parameters are pruned from the binding dict at the end.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..lang import ast
from ..lang.pretty import pretty_statement

__all__ = ["shrink_case"]

Predicate = Callable[[str, Dict[str, Any]], bool]


def _replace(node: Any, **changes: Any) -> Any:
    return dataclasses.replace(node, **changes)


# ---------------------------------------------------------------------------
# Wave 1: clause-level drops
# ---------------------------------------------------------------------------
def _drop_clauses(stmt: ast.Query) -> Iterator[ast.Query]:
    for index in range(len(stmt.heads)):
        heads = stmt.heads[:index] + stmt.heads[index + 1 :]
        yield _replace(stmt, heads=heads)
    for body in _drop_body_clauses(stmt.body):
        yield _replace(stmt, body=body)


def _drop_body_clauses(body: ast.QueryBody) -> Iterator[ast.QueryBody]:
    if isinstance(body, ast.SetOpQuery):
        yield body.left
        yield body.right
        for left in _drop_body_clauses(body.left):
            yield _replace(body, left=left)
        for right in _drop_body_clauses(body.right):
            yield _replace(body, right=right)
        return
    if not isinstance(body, ast.BasicQuery):
        return
    match = body.match
    if match is not None:
        if match.optionals:
            for index in range(len(match.optionals)):
                optionals = (
                    match.optionals[:index] + match.optionals[index + 1 :]
                )
                yield _replace(body, match=_replace(match, optionals=optionals))
        block = match.block
        if len(block.patterns) > 1:
            for index in range(len(block.patterns)):
                patterns = (
                    block.patterns[:index] + block.patterns[index + 1 :]
                )
                yield _replace(
                    body,
                    match=_replace(match, block=_replace(block, patterns=patterns)),
                )
        if block.where is not None:
            yield _replace(
                body, match=_replace(match, block=_replace(block, where=None))
            )
        for pattern in _drop_pattern_on(block):
            yield _replace(body, match=_replace(match, block=pattern))
    if isinstance(body.head, ast.SelectClause):
        for head in _drop_select_clauses(body.head):
            yield _replace(body, head=head)
    if isinstance(body.head, ast.ConstructClause):
        for head in _drop_construct_clauses(body.head):
            yield _replace(body, head=head)


def _drop_pattern_on(block: ast.MatchBlock) -> Iterator[ast.MatchBlock]:
    for index, location in enumerate(block.patterns):
        if location.on is not None:
            patterns = (
                block.patterns[:index]
                + (_replace(location, on=None),)
                + block.patterns[index + 1 :]
            )
            yield _replace(block, patterns=patterns)


def _drop_select_clauses(head: ast.SelectClause) -> Iterator[ast.SelectClause]:
    if head.limit is not None:
        yield _replace(head, limit=None, offset=None)
    if head.offset is not None:
        yield _replace(head, offset=None)
    if head.order_by:
        yield _replace(head, order_by=())
    if head.distinct:
        yield _replace(head, distinct=False)
    if head.group_by:
        yield _replace(head, group_by=())
    if len(head.items) > 1:
        for index in range(len(head.items)):
            items = head.items[:index] + head.items[index + 1 :]
            yield _replace(head, items=items)


def _drop_construct_clauses(
    head: ast.ConstructClause,
) -> Iterator[ast.ConstructClause]:
    if len(head.items) > 1:
        for index in range(len(head.items)):
            items = head.items[:index] + head.items[index + 1 :]
            yield _replace(head, items=items)
    for index, item in enumerate(head.items):
        if not isinstance(item, ast.PatternItem):
            continue
        simpler: List[ast.PatternItem] = []
        if item.when is not None:
            simpler.append(_replace(item, when=None))
        if item.sets:
            simpler.append(_replace(item, sets=()))
        if item.removes:
            simpler.append(_replace(item, removes=()))
        for variant in simpler:
            items = head.items[:index] + (variant,) + head.items[index + 1 :]
            yield _replace(head, items=items)


# ---------------------------------------------------------------------------
# Wave 2: atom-level drops
# ---------------------------------------------------------------------------
def _shrink_chain(chain: ast.Chain) -> Iterator[ast.Chain]:
    # Shorten from the tail: (n)-(e)-(n)-(e)-(n) -> (n)-(e)-(n) -> (n).
    length = len(chain.elements)
    while length > 1:
        length -= 2
        yield ast.Chain(chain.elements[:length])
    for index, element in enumerate(chain.elements):
        for variant in _shrink_element(element):
            elements = (
                chain.elements[:index]
                + (variant,)
                + chain.elements[index + 1 :]
            )
            yield ast.Chain(elements)


def _shrink_element(element: Any) -> Iterator[Any]:
    if isinstance(element, ast.NodePattern):
        if element.labels:
            yield _replace(element, labels=())
        if element.prop_tests:
            yield _replace(element, prop_tests=())
        if element.prop_binds:
            yield _replace(element, prop_binds=())
        if element.assignments:
            yield _replace(element, assignments=())
        if element.group is not None:
            yield _replace(element, group=None)
        return
    if isinstance(element, ast.EdgePattern):
        if element.labels:
            yield _replace(element, labels=())
        if element.prop_tests:
            yield _replace(element, prop_tests=())
        if element.direction != ast.OUT:
            yield _replace(element, direction=ast.OUT)
        return
    if isinstance(element, ast.PathPatternElem):
        # The big cut first: the connector becomes a plain edge.
        yield ast.EdgePattern()
        if element.cost_var is not None:
            yield _replace(element, cost_var=None)
        if element.count > 1:
            yield _replace(element, count=1)
        if element.mode != "shortest":
            yield _replace(element, mode="shortest", count=1)
        if element.regex is not None:
            for regex in _shrink_regex(element.regex):
                yield _replace(element, regex=regex)


def _shrink_regex(regex: ast.RegexExpr) -> Iterator[ast.RegexExpr]:
    if isinstance(regex, (ast.RConcat, ast.RAlt)):
        for item in regex.items:
            yield item
    elif isinstance(regex, (ast.RStar, ast.RPlus, ast.ROpt, ast.RRepeat)):
        yield regex.item
    elif isinstance(regex, ast.RLabel) and regex.inverse:
        yield _replace(regex, inverse=False)


def _drop_atoms(stmt: ast.Query) -> Iterator[ast.Query]:
    for body in _map_chains(stmt.body):
        yield _replace(stmt, body=body)


def _map_chains(body: ast.QueryBody) -> Iterator[ast.QueryBody]:
    if isinstance(body, ast.SetOpQuery):
        for left in _map_chains(body.left):
            yield _replace(body, left=left)
        for right in _map_chains(body.right):
            yield _replace(body, right=right)
        return
    if not isinstance(body, ast.BasicQuery):
        return
    match = body.match
    if match is not None:
        blocks = (match.block,) + match.optionals
        for block_index, block in enumerate(blocks):
            for index, location in enumerate(block.patterns):
                for chain in _shrink_chain(location.chain):
                    patterns = (
                        block.patterns[:index]
                        + (_replace(location, chain=chain),)
                        + block.patterns[index + 1 :]
                    )
                    new_block = _replace(block, patterns=patterns)
                    if block_index == 0:
                        yield _replace(
                            body, match=_replace(match, block=new_block)
                        )
                    else:
                        optionals = (
                            match.optionals[: block_index - 1]
                            + (new_block,)
                            + match.optionals[block_index:]
                        )
                        yield _replace(
                            body, match=_replace(match, optionals=optionals)
                        )
    if isinstance(body.head, ast.ConstructClause):
        for index, item in enumerate(body.head.items):
            if not isinstance(item, ast.PatternItem):
                continue
            for chain in _shrink_chain(item.chain):
                items = (
                    body.head.items[:index]
                    + (_replace(item, chain=chain),)
                    + body.head.items[index + 1 :]
                )
                yield _replace(body, head=_replace(body.head, items=items))


# ---------------------------------------------------------------------------
# Wave 3: expression / literal simplification
# ---------------------------------------------------------------------------
def _shrink_expr(expr: ast.Expr) -> Iterator[ast.Expr]:
    if isinstance(expr, ast.Binary):
        if expr.op in ("and", "or", "xor"):
            yield expr.left
            yield expr.right
        for left in _shrink_expr(expr.left):
            yield _replace(expr, left=left)
        for right in _shrink_expr(expr.right):
            yield _replace(expr, right=right)
    elif isinstance(expr, ast.Unary):
        yield expr.operand
        for inner in _shrink_expr(expr.operand):
            yield _replace(expr, operand=inner)
    elif isinstance(expr, ast.CaseExpr):
        for condition, value in expr.whens:
            yield condition
            yield value
    elif isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            yield arg
        for index, arg in enumerate(expr.args):
            for inner in _shrink_expr(arg):
                args = expr.args[:index] + (inner,) + expr.args[index + 1 :]
                yield _replace(expr, args=args)
    elif isinstance(expr, ast.Literal):
        value = expr.value
        if isinstance(value, bool):
            pass
        elif isinstance(value, int) and value not in (0, 1):
            yield ast.Literal(0)
            yield ast.Literal(1)
        elif isinstance(value, float) and value != 0.0:
            yield ast.Literal(0.0)
        elif isinstance(value, str) and value:
            yield ast.Literal("")


def _simplify_expressions(stmt: ast.Query) -> Iterator[ast.Query]:
    for body in _map_exprs(stmt.body):
        yield _replace(stmt, body=body)
    for index, head in enumerate(stmt.heads):
        if isinstance(head, ast.PathClause):
            variants: List[ast.PathClause] = []
            if head.where is not None:
                variants.append(_replace(head, where=None))
            if head.cost is not None:
                variants.append(_replace(head, cost=None))
            for variant in variants:
                heads = stmt.heads[:index] + (variant,) + stmt.heads[index + 1 :]
                yield _replace(stmt, heads=heads)


def _map_exprs(body: ast.QueryBody) -> Iterator[ast.QueryBody]:
    if isinstance(body, ast.SetOpQuery):
        for left in _map_exprs(body.left):
            yield _replace(body, left=left)
        for right in _map_exprs(body.right):
            yield _replace(body, right=right)
        return
    if not isinstance(body, ast.BasicQuery):
        return
    match = body.match
    if match is not None and match.block.where is not None:
        for where in _shrink_expr(match.block.where):
            yield _replace(
                body,
                match=_replace(match, block=_replace(match.block, where=where)),
            )
    if isinstance(body.head, ast.SelectClause):
        for index, item in enumerate(body.head.items):
            for inner in _shrink_expr(item.expr):
                items = (
                    body.head.items[:index]
                    + (_replace(item, expr=inner),)
                    + body.head.items[index + 1 :]
                )
                yield _replace(body, head=_replace(body.head, items=items))
    if isinstance(body.head, ast.ConstructClause):
        for index, item in enumerate(body.head.items):
            if isinstance(item, ast.PatternItem) and item.when is not None:
                for when in _shrink_expr(item.when):
                    items = (
                        body.head.items[:index]
                        + (_replace(item, when=when),)
                        + body.head.items[index + 1 :]
                    )
                    yield _replace(
                        body, head=_replace(body.head, items=items)
                    )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
_WAVES = (_drop_clauses, _drop_atoms, _simplify_expressions)


def _inline_params(
    stmt: ast.Query, params: Dict[str, Any]
) -> Iterator[Tuple[ast.Query, Dict[str, Any]]]:
    """Try replacing one ``$param`` whose value has literal syntax."""
    for name, value in sorted(params.items()):
        if isinstance(value, bool) or not isinstance(
            value, (int, float, str)
        ):
            continue

        replaced = _substitute_param(stmt, name, ast.Literal(value))
        if replaced is not stmt:
            yield replaced, {k: v for k, v in params.items() if k != name}


def _substitute_param(node: Any, name: str, literal: ast.Literal) -> Any:
    """Structurally replace ``$name`` with *literal* (pure, frozen-safe)."""
    if isinstance(node, ast.Param):
        return literal if node.name == name else node
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        changes = {}
        for field_info in dataclasses.fields(node):
            old = getattr(node, field_info.name)
            new = _substitute_param_any(old, name, literal)
            if new is not old:
                changes[field_info.name] = new
        return _replace(node, **changes) if changes else node
    return node


def _substitute_param_any(value: Any, name: str, literal: ast.Literal) -> Any:
    if isinstance(value, tuple):
        items = tuple(_substitute_param_any(v, name, literal) for v in value)
        return items if any(a is not b for a, b in zip(items, value)) else value
    return _substitute_param(value, name, literal)


def _prune_params(text: str, params: Dict[str, Any]) -> Dict[str, Any]:
    return {
        name: value for name, value in params.items() if f"${name}" in text
    }


def shrink_case(
    text: str,
    params: Dict[str, Any],
    statement: ast.Query,
    predicate: Predicate,
    max_checks: int = 400,
) -> Tuple[str, Dict[str, Any]]:
    """Greedily minimize *(text, params)* while *predicate* stays true.

    *predicate(candidate_text, candidate_params)* must return True when
    the candidate still exhibits the divergence. The original input is
    assumed to satisfy it. Returns the smallest accepted (text, params).
    """
    current = statement
    current_params = dict(params)
    checks = 0

    def accept(candidate: ast.Query, candidate_params: Dict[str, Any]) -> Optional[str]:
        nonlocal checks
        if checks >= max_checks:
            return None
        checks += 1
        try:
            candidate_text = pretty_statement(candidate)
        except Exception:  # noqa: BLE001 - unprintable candidate: skip it
            return None
        pruned = _prune_params(candidate_text, candidate_params)
        try:
            if predicate(candidate_text, pruned):
                return candidate_text
        except Exception:  # noqa: BLE001 - predicate crash = not a reproducer
            return None
        return None

    progress = True
    while progress and checks < max_checks:
        progress = False
        for wave in _WAVES:
            for candidate in wave(current):
                accepted = accept(candidate, current_params)
                if accepted is not None:
                    current = candidate
                    current_params = _prune_params(accepted, current_params)
                    progress = True
                    break
            if progress:
                break
        if progress:
            continue
        for candidate, candidate_params in _inline_params(
            current, current_params
        ):
            accepted = accept(candidate, candidate_params)
            if accepted is not None:
                current = candidate
                current_params = _prune_params(accepted, candidate_params)
                progress = True
                break

    final_text = pretty_statement(current)
    return final_text, _prune_params(final_text, current_params)
