"""The deterministic JSON counterexample format and corpus helpers.

A counterexample is everything needed to replay one divergence byte-for-
byte: the generator seed, the statement text, its parameter bindings,
the :class:`~repro.config.ExecutionConfig` lattice points it ran on, and
the encoded expected/actual outcomes. Files are written with sorted keys
and a trailing newline so reruns produce identical bytes — the corpus in
``tests/fuzz/corpus/`` is diffable and its replay (tier-1 test +
``tools/lint_repo.py``) is deterministic.

Value encoding is shape-preserving where JSON is lossy:

* ``bool`` → ``{"$bool": ...}`` — Python's ``1 == True`` would otherwise
  let an ``INTEGER``/``BOOLEAN`` divergence slip through an encoded
  comparison (G-CORE's ``TRUE`` is *not* ``1``);
* ``Date`` → ``{"$date": "YYYY-MM-DD"}`` (no date literal syntax: dates
  travel through ``$params``);
* value sets → ``{"$set": [...]}``, members sorted by a total
  type-then-repr order so encoding is canonical;
* everything else JSON represents faithfully (``int`` vs ``float`` stay
  distinct in the source text of the file);
* unknown objects fall back to ``{"$repr": ...}`` — comparable, not
  reconstructable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from ..model.values import Date
from .grammar import scalar_sort_key

__all__ = [
    "Counterexample",
    "decode_value",
    "encode_value",
    "load_counterexample",
]


def encode_value(value: Any) -> Any:
    """Encode one scalar/set value into canonical JSON form."""
    if isinstance(value, bool):
        return {"$bool": value}
    if value is None or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, Date):
        return {"$date": str(value)}
    if isinstance(value, (set, frozenset)):
        members = sorted(value, key=scalar_sort_key)
        return {"$set": [encode_value(member) for member in members]}
    if isinstance(value, (list, tuple)):
        return [encode_value(member) for member in value]
    if isinstance(value, dict):
        # Already-encoded payloads pass through (encode is idempotent).
        return value
    return {"$repr": repr(value)}


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` (``$repr`` stays opaque)."""
    if isinstance(value, dict):
        if "$bool" in value:
            return bool(value["$bool"])
        if "$date" in value:
            return Date.parse(value["$date"])
        if "$set" in value:
            return frozenset(decode_value(member) for member in value["$set"])
        return value
    if isinstance(value, list):
        return [decode_value(member) for member in value]
    return value


@dataclass(frozen=True)
class Counterexample:
    """One shrunk divergence, replayable from its JSON file alone."""

    seed: int
    query: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: the ExecutionConfig lattice points the differential run compared
    configs: List[Dict[str, Any]] = field(default_factory=list)
    #: encoded outcome under the oracle config (``expected["config"]``)
    expected: Dict[str, Any] = field(default_factory=dict)
    #: encoded outcome under the diverging config (``actual["config"]``)
    actual: Dict[str, Any] = field(default_factory=dict)
    #: divergence class: rows / columns / order / graph / error / crash
    kind: str = ""
    #: free-form provenance: what was broken, which module fixed it
    note: str = ""

    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "query": self.query,
            "params": {
                name: encode_value(value)
                for name, value in sorted(self.params.items())
            },
            "configs": self.configs,
            "expected": self.expected,
            "actual": self.actual,
            "kind": self.kind,
            "note": self.note,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    def decoded_params(self) -> Dict[str, Any]:
        """Parameter bindings with Dates/sets/bools reconstructed."""
        return {
            name: decode_value(value) for name, value in self.params.items()
        }


def load_counterexample(path: Union[str, Path]) -> Counterexample:
    """Load a corpus file back into a :class:`Counterexample`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return Counterexample(
        seed=int(data["seed"]),
        query=data["query"],
        params=dict(data.get("params", {})),
        configs=list(data.get("configs", [])),
        expected=dict(data.get("expected", {})),
        actual=dict(data.get("actual", {})),
        kind=data.get("kind", ""),
        note=data.get("note", ""),
    )
