"""Grammar-directed differential fuzzing over the ExecutionConfig lattice.

The package is the standing bug-finding harness promised by ROADMAP
item 3 (``docs/fuzzing.md``):

* :mod:`repro.fuzz.grammar` — the weighted grammar productions and the
  catalog-derived vocabulary the generator draws names and values from;
* :mod:`repro.fuzz.generate` — a deterministic, seed-addressed query
  generator over the full G-CORE surface, filtered to analyzer-clean
  statements with :meth:`GCoreEngine.analyze`;
* :mod:`repro.fuzz.differential` — executes each statement across a set
  of :class:`~repro.config.ExecutionConfig` lattice points plus the
  strict-analysis oracle and compares outcomes structurally;
* :mod:`repro.fuzz.shrink` — delta-debugging reduction of a failing
  statement to a minimal reproducer;
* :mod:`repro.fuzz.corpus` — the deterministic JSON counterexample
  format and the committed-reproducer replay helpers
  (``tests/fuzz/corpus/``);
* ``python -m repro.fuzz`` — the CLI (:mod:`repro.fuzz.__main__`).
"""

from .corpus import Counterexample, decode_value, encode_value, load_counterexample
from .differential import (
    CONFIG_PRESETS,
    ORACLE_CONFIG,
    DifferentialTester,
    Outcome,
    build_engine,
    parse_configs,
    replay_counterexample,
    run_case,
)
from .generate import GeneratedCase, QueryGenerator
from .grammar import DEFAULT_WEIGHTS, GraphVocab, Vocabulary
from .shrink import shrink_case

__all__ = [
    "CONFIG_PRESETS",
    "Counterexample",
    "DEFAULT_WEIGHTS",
    "DifferentialTester",
    "GeneratedCase",
    "GraphVocab",
    "ORACLE_CONFIG",
    "Outcome",
    "QueryGenerator",
    "Vocabulary",
    "build_engine",
    "decode_value",
    "encode_value",
    "load_counterexample",
    "parse_configs",
    "replay_counterexample",
    "run_case",
    "shrink_case",
]
