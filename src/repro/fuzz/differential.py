"""Differential execution over the ExecutionConfig lattice.

One statement is executed at every configured lattice point and each
outcome is compared, structurally, against the **oracle**: the
all-reference configuration (:data:`~repro.config.NAIVE_CONFIG`) run in
strict-analysis mode. Anything the oracle and an optimized configuration
disagree about is a counterexample:

* different rows, row order, or column headers of a SELECT table;
* a different constructed graph (node/edge/path sets, labels,
  properties — compared through
  :func:`repro.model.io.graph_to_dict`, valid because skolemized ids
  are deterministic across configs for the same statement text);
* a different error *code*, or an error on one side only;
* any non-:class:`~repro.errors.GCoreError` exception ("crash");
* the **error-parity lane**: when the analyzer reports only
  unknown-name diagnostics (GC101/GC102/GC105), every execution must
  raise the matching structured error — an execution that succeeds, or
  fails with a different code, contradicts the static analyzer.

The engine under test is shared across all runs of a session: the
prepared-query cache, catalog and id generator are part of the surface
being fuzzed (a divergence that only appears on a warm cache is still a
divergence).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import DEFAULT_CONFIG, NAIVE_CONFIG, ExecutionConfig
from ..datasets.paper import (
    company_graph,
    figure2_graph,
    orders_table,
    social_graph,
)
from ..engine import GCoreEngine
from ..errors import GCoreError, ValidationError
from ..lang import ast
from ..eval.query import ViewResult
from ..model.graph import PathPropertyGraph
from ..model.io import graph_to_dict
from ..table import Table
from .corpus import Counterexample, encode_value
from .generate import GeneratedCase

__all__ = [
    "CONFIG_PRESETS",
    "DEFAULT_LATTICE",
    "DifferentialTester",
    "ORACLE_CONFIG",
    "Outcome",
    "TablePolicy",
    "build_engine",
    "diff_outcomes",
    "rows_sorted",
    "table_policy",
    "parse_configs",
    "replay_counterexample",
    "run_case",
]

#: The named lattice points the CLI accepts (plus ``axis=value`` forms).
CONFIG_PRESETS: Dict[str, ExecutionConfig] = {
    "default": DEFAULT_CONFIG,
    "naive": NAIVE_CONFIG,
    "greedy": DEFAULT_CONFIG.with_(planner="greedy"),
    "reference": DEFAULT_CONFIG.with_(executor="reference"),
    "interpreted": DEFAULT_CONFIG.with_(expressions="interpreted"),
    "naive-paths": DEFAULT_CONFIG.with_(paths="naive"),
    "parallel": DEFAULT_CONFIG.with_(parallelism=4),
}

#: All-reference lattice point used as the differential ground truth.
ORACLE_CONFIG = NAIVE_CONFIG

#: The default set of optimized points compared against the oracle.
DEFAULT_LATTICE: Tuple[str, ...] = (
    "default",
    "greedy",
    "reference",
    "interpreted",
    "naive-paths",
    "parallel",
)

#: Analyzer codes whose runtime twins the error-parity lane checks.
_PARITY_CODES = frozenset({"GC101", "GC102", "GC105"})


def parse_configs(specs: Sequence[str]) -> List[Tuple[str, ExecutionConfig]]:
    """Resolve CLI config specs: preset names or ``axis=value[,...]``."""
    resolved: List[Tuple[str, ExecutionConfig]] = []
    for spec in specs:
        if spec in CONFIG_PRESETS:
            resolved.append((spec, CONFIG_PRESETS[spec]))
            continue
        if "=" not in spec:
            raise ValidationError(
                f"unknown config {spec!r}; expected one of "
                f"{', '.join(sorted(CONFIG_PRESETS))} or axis=value[,...]"
            )
        changes: Dict[str, Any] = {}
        for part in spec.split(","):
            axis, _, value = part.partition("=")
            changes[axis.strip()] = (
                int(value) if value.strip().isdigit() else value.strip()
            )
        resolved.append((spec, ExecutionConfig.from_json(changes)))
    return resolved


def build_engine() -> GCoreEngine:
    """The standard fuzzing catalog: paper graphs, a table, a path view."""
    engine = GCoreEngine()
    engine.register_graph("social_graph", social_graph(), default=True)
    engine.register_graph("figure2", figure2_graph())
    engine.register_graph("company", company_graph())
    engine.register_table("orders", orders_table())
    engine.register_path_view("PATH wKnows = (x)-[e:knows]->(y) COST 1")
    return engine


@dataclass(frozen=True)
class Outcome:
    """The encoded result of one statement at one lattice point."""

    kind: str  # table | graph | view | error | crash
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, **self.payload}


_FRESH_ID = re.compile(r"^_([a-z]+)(\d+)$")


def _canonical_graph(data: Dict[str, Any]) -> Dict[str, Any]:
    """Renumber engine-fresh ids so graphs compare across runs.

    Ungrouped CONSTRUCT variables draw ids from the engine's shared
    atomic counter (``IdFactory.fresh`` → ``_n17``), so the *same*
    statement allocates different raw ids on every execution. Allocation
    order, however, tracks binding-enumeration order, which the row
    oracle already pins across configs — renumbering fresh ids by their
    numeric allocation order (per kind prefix) yields a form that is
    stable across runs yet still distinguishes genuinely different
    graphs. Skolemized (grouped) and base-graph ids are memoized on the
    engine and pass through untouched.
    """
    fresh: Dict[str, List[int]] = {}
    ids: List[str] = []
    for section in ("nodes", "edges", "paths"):
        ids.extend(entry["id"] for entry in data[section])
    for object_id in ids:
        matched = _FRESH_ID.match(str(object_id))
        if matched:
            fresh.setdefault(matched.group(1), []).append(
                int(matched.group(2))
            )
    renames: Dict[str, str] = {}
    for kind, numbers in fresh.items():
        for index, number in enumerate(sorted(numbers)):
            renames[f"_{kind}{number}"] = f"_{kind}#{index}"
    if not renames:
        return data

    def rename(object_id: Any) -> Any:
        return renames.get(object_id, object_id)

    out = dict(data)
    out["nodes"] = sorted(
        (dict(entry, id=rename(entry["id"])) for entry in data["nodes"]),
        key=lambda entry: str(entry["id"]),
    )
    out["edges"] = sorted(
        (
            dict(
                entry,
                id=rename(entry["id"]),
                source=rename(entry["source"]),
                target=rename(entry["target"]),
            )
            for entry in data["edges"]
        ),
        key=lambda entry: str(entry["id"]),
    )
    out["paths"] = sorted(
        (
            dict(
                entry,
                id=rename(entry["id"]),
                sequence=[rename(obj) for obj in entry["sequence"]],
            )
            for entry in data["paths"]
        ),
        key=lambda entry: str(entry["id"]),
    )
    return out


def _encode_result(result: Any) -> Outcome:
    if isinstance(result, Table):
        return Outcome(
            "table",
            {
                "columns": list(result.columns),
                "rows": [
                    [encode_value(cell) for cell in row]
                    for row in result.rows
                ],
            },
        )
    if isinstance(result, ViewResult):
        return Outcome(
            "view",
            {"name": result.name, "graph": _canonical_graph(graph_to_dict(result.graph))},
        )
    if isinstance(result, PathPropertyGraph):
        return Outcome("graph", {"graph": _canonical_graph(graph_to_dict(result))})
    return Outcome("crash", {"error": f"unexpected result {type(result).__name__}"})


def run_case(
    engine: GCoreEngine,
    text: str,
    params: Optional[Dict[str, Any]] = None,
    config: Optional[ExecutionConfig] = None,
    strict: bool = False,
) -> Outcome:
    """Execute one statement at one lattice point; never raises."""
    try:
        result = engine.run(text, params=params, config=config, strict=strict)
    except GCoreError as exc:
        diagnostic = None
        to_diag = getattr(exc, "to_diagnostic", None)
        if callable(to_diag):
            diagnostic = to_diag().code
        return Outcome(
            "error", {"code": exc.code, "diagnostic": diagnostic}
        )
    except Exception as exc:  # noqa: BLE001 - crashes are a finding, not a bug here
        return Outcome(
            "crash",
            {"error": type(exc).__name__, "message": str(exc)[:300]},
        )
    return _encode_result(result)


def _row_key(row: List[Any]) -> str:
    return json.dumps(row, sort_keys=True)


@dataclass(frozen=True)
class TablePolicy:
    """How strictly two table outcomes are compared.

    Row *order* without ORDER BY — and row *content* under LIMIT/OFFSET
    without a total ORDER BY — follow the planner's binding-enumeration
    order, which the config lattice deliberately varies. The policy
    encodes what the statement actually pins: full multisets by default,
    only the cardinality when LIMIT/OFFSET may cut an unpinned order,
    and per-side sortedness for ORDER BY keys that are projected
    columns (``order_spec`` maps key → (column index, ascending)).
    """

    count_only: bool = False
    order_spec: Tuple[Tuple[int, bool], ...] = ()


def table_policy(statement: ast.Statement) -> TablePolicy:
    """Derive the comparison policy from the statement's SELECT head."""
    if not isinstance(statement, ast.Query):
        return TablePolicy()
    body = statement.body
    if not isinstance(body, ast.BasicQuery) or not isinstance(
        body.head, ast.SelectClause
    ):
        return TablePolicy()
    head = body.head
    count_only = head.limit is not None or bool(head.offset)
    spec: List[Tuple[int, bool]] = []
    for expr, ascending in head.order_by:
        index = None
        for position, item in enumerate(head.items):
            if item.expr == expr or (
                isinstance(expr, ast.Var) and expr.name == item.alias
            ):
                index = position
                break
        if index is None:
            # A key that is not a projected column: sortedness is not
            # checkable from the encoded rows alone.
            spec = []
            break
        spec.append((index, ascending))
    return TablePolicy(count_only=count_only, order_spec=tuple(spec))


def _cell_token(cell: Any) -> Optional[Tuple[str, str]]:
    """Mirror ``eval.select._sort_token`` on an *encoded* cell.

    Returns None for cells whose engine-side token is not recoverable
    from the encoding (value sets: the engine stringifies the raw
    frozenset, whose member order is unknowable here).
    """
    if isinstance(cell, dict):
        if "$bool" in cell:
            return ("bool", str(bool(cell["$bool"])))
        if "$date" in cell:
            return ("Date", cell["$date"])
        return None
    if cell is None:
        return ("NoneType", "None")
    return (type(cell).__name__, str(cell))


def rows_sorted(
    rows: List[List[Any]], order_spec: Tuple[Tuple[int, bool], ...]
) -> bool:
    """True when *rows* respects the ORDER BY key columns (ties free)."""
    for previous, current in zip(rows, rows[1:]):
        for index, ascending in order_spec:
            left = _cell_token(previous[index])
            right = _cell_token(current[index])
            if left is None or right is None:
                break  # unorderable cell: give this pair up, not the run
            if left == right:
                continue
            if (left < right) != ascending:
                return False
            break
    return True


def diff_outcomes(
    expected: Outcome,
    actual: Outcome,
    policy: Optional[TablePolicy] = None,
) -> Optional[str]:
    """The divergence class between two outcomes, or None if equal."""
    if actual.kind == "crash" or expected.kind == "crash":
        return None if expected.to_json() == actual.to_json() else "crash"
    if expected.kind != actual.kind:
        return "error" if "error" in (expected.kind, actual.kind) else "kind"
    if expected.kind == "error":
        if expected.payload.get("code") != actual.payload.get("code"):
            return "error"
        return None
    if expected.kind == "table":
        policy = policy or TablePolicy()
        if expected.payload["columns"] != actual.payload["columns"]:
            return "columns"
        left = expected.payload["rows"]
        right = actual.payload["rows"]
        if policy.order_spec and not rows_sorted(right, policy.order_spec):
            return "order"
        if policy.count_only:
            return "rows" if len(left) != len(right) else None
        if sorted(map(_row_key, left)) != sorted(map(_row_key, right)):
            return "rows"
        return None
    # graph / view: structural equality of the canonical dict form
    if expected.payload != actual.payload:
        return "graph"
    return None


class DifferentialTester:
    """Runs statements across the lattice and reports divergences."""

    def __init__(
        self,
        engine: Optional[GCoreEngine] = None,
        configs: Optional[Sequence[Tuple[str, ExecutionConfig]]] = None,
        oracle: ExecutionConfig = ORACLE_CONFIG,
    ) -> None:
        self.engine = engine if engine is not None else build_engine()
        if configs is None:
            configs = [(name, CONFIG_PRESETS[name]) for name in DEFAULT_LATTICE]
        self.configs = list(configs)
        self.oracle = oracle
        self.stats: Dict[str, int] = {
            "analyzed": 0,
            "skipped": 0,
            "executed": 0,
            "parity_checked": 0,
            "divergences": 0,
        }

    # ------------------------------------------------------------------
    def check_case(self, case: GeneratedCase) -> Optional[Counterexample]:
        return self.check_text(case.text, case.params, case.seed)

    def check_text(
        self,
        text: str,
        params: Optional[Dict[str, Any]] = None,
        seed: int = -1,
    ) -> Optional[Counterexample]:
        """Differentially execute one statement; None means no divergence."""
        params = params or {}
        self.stats["analyzed"] += 1
        analysis = self.engine.analyze(text)
        error_codes = sorted({d.code for d in analysis.errors})
        if error_codes:
            if not set(error_codes) <= _PARITY_CODES:
                # Outside the fuzzer's surface: the generate-time filter
                # would have discarded this statement.
                self.stats["skipped"] += 1
                return None
            return self._check_error_parity(text, params, seed, error_codes)
        self.stats["executed"] += 1
        try:
            policy = table_policy(self.engine.parse(text))
        except GCoreError:
            policy = TablePolicy()
        expected = run_case(
            self.engine, text, params, self.oracle, strict=True
        )
        if expected.kind == "crash":
            return self._report(
                seed, text, params, "oracle", self.oracle,
                Outcome("no-crash"), expected, "crash",
            )
        if expected.kind == "error" and expected.payload.get("code") == (
            "analysis_error"
        ):
            # The analyzer passed the statement above but strict mode
            # rejected it here: analyzer/executor disagreement.
            return self._report(
                seed, text, params, "oracle", self.oracle,
                Outcome("analyzer-clean"), expected, "error",
            )
        if (
            expected.kind == "table"
            and policy.order_spec
            and not rows_sorted(expected.payload["rows"], policy.order_spec)
        ):
            return self._report(
                seed, text, params, "oracle", self.oracle,
                Outcome("sorted"), expected, "order",
            )
        for name, config in self.configs:
            actual = run_case(self.engine, text, params, config)
            kind = diff_outcomes(expected, actual, policy)
            if kind is not None:
                return self._report(
                    seed, text, params, name, config, expected, actual, kind
                )
        return None

    # ------------------------------------------------------------------
    def _check_error_parity(
        self,
        text: str,
        params: Dict[str, Any],
        seed: int,
        codes: List[str],
    ) -> Optional[Counterexample]:
        """Unknown-name diagnostics must match the runtime error."""
        self.stats["parity_checked"] += 1
        expected = Outcome("error", {"analyzer_codes": codes})
        for name, config in self.configs:
            actual = run_case(self.engine, text, params, config)
            ok = (
                actual.kind == "error"
                and actual.payload.get("diagnostic") in codes
            )
            if not ok:
                return self._report(
                    seed, text, params, name, config, expected, actual,
                    "error-parity",
                )
        return None

    def _report(
        self,
        seed: int,
        text: str,
        params: Dict[str, Any],
        config_name: str,
        config: ExecutionConfig,
        expected: Outcome,
        actual: Outcome,
        kind: str,
    ) -> Counterexample:
        self.stats["divergences"] += 1
        return Counterexample(
            seed=seed,
            query=text,
            params=dict(params),
            configs=[self.oracle.to_json()]
            + [cfg.to_json() for _name, cfg in self.configs],
            expected={
                "config": self.oracle.describe(),
                "outcome": expected.to_json(),
            },
            actual={
                "config": f"{config_name}: {config.describe()}",
                "outcome": actual.to_json(),
            },
            kind=kind,
        )


def replay_counterexample(
    counterexample: Counterexample,
    engine: Optional[GCoreEngine] = None,
) -> Optional[Counterexample]:
    """Re-run a corpus entry on the standard engine.

    Returns None when the divergence no longer reproduces (the committed
    state of the corpus: every entry records a *fixed* bug) and the
    fresh counterexample when it still does.
    """
    configs: List[Tuple[str, ExecutionConfig]] = []
    for index, raw in enumerate(counterexample.configs):
        config = ExecutionConfig.from_json(raw)
        configs.append((f"cfg{index}", config))
    tester = DifferentialTester(
        engine=engine, configs=configs or None
    )
    return tester.check_text(
        counterexample.query,
        counterexample.decoded_params(),
        counterexample.seed,
    )
