"""CLI for the differential fuzzer: ``python -m repro.fuzz``.

Fuzzing mode (the default) generates seed-addressed statements, filters
them through the static analyzer, executes each survivor across the
requested :class:`~repro.config.ExecutionConfig` lattice points plus the
strict-analysis oracle, and — on the first divergence — shrinks it to a
minimal reproducer and reports the deterministic JSON counterexample on
stdout (and to ``--out`` when given). Exit status 1 signals a
counterexample, 0 a clean run, 2 a usage error.

Replay mode (``--replay FILE`` / ``--replay-dir DIR``) re-runs committed
corpus entries: entries record *fixed* bugs, so a clean replay exits 0
and a reproducing divergence exits 1 (that is the regression the corpus
guards against — see ``tests/fuzz/test_corpus_replay.py`` and the
``fuzz-smoke`` CI job).

Examples::

    python -m repro.fuzz --seeds 500
    python -m repro.fuzz --seeds 200 --configs default parallel --time-budget 30
    python -m repro.fuzz --replay tests/fuzz/corpus/0001-anchored-start.json
    python -m repro.fuzz --replay-dir tests/fuzz/corpus
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..errors import GCoreError
from .corpus import Counterexample, load_counterexample
from .differential import (
    DEFAULT_LATTICE,
    DifferentialTester,
    build_engine,
    parse_configs,
)
from .generate import QueryGenerator
from .grammar import Vocabulary
from .shrink import shrink_case

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzer over the ExecutionConfig lattice",
    )
    parser.add_argument(
        "--seeds", type=int, default=200,
        help="number of generator seeds to try (default: 200)",
    )
    parser.add_argument(
        "--start", type=int, default=0,
        help="first seed (default: 0; seeds are start..start+N-1)",
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="S",
        help="stop after S seconds even if seeds remain",
    )
    parser.add_argument(
        "--configs", nargs="+", default=list(DEFAULT_LATTICE),
        help="lattice points to compare against the oracle: preset names "
             "or axis=value[,axis=value] specs",
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="also write the (shrunk) counterexample JSON to FILE",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report the raw divergence without delta-debugging it",
    )
    parser.add_argument(
        "--replay", type=Path, default=None, metavar="FILE",
        help="replay one corpus counterexample instead of fuzzing",
    )
    parser.add_argument(
        "--replay-dir", type=Path, default=None, metavar="DIR",
        help="replay every *.json counterexample under DIR",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print each executed seed",
    )
    return parser


def _replay_files(paths: List[Path]) -> int:
    from .differential import replay_counterexample

    engine = build_engine()
    failures = 0
    for path in paths:
        try:
            entry = load_counterexample(path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"REPLAY ERROR {path}: {exc}")
            failures += 1
            continue
        fresh = replay_counterexample(entry, engine=engine)
        if fresh is None:
            print(f"ok {path} (seed {entry.seed}, kind {entry.kind or '-'})")
        else:
            failures += 1
            print(f"DIVERGES {path} (kind {fresh.kind})")
            print(fresh.to_json())
    if failures:
        print(f"{failures} corpus entr{'y' if failures == 1 else 'ies'} diverging")
    return 1 if failures else 0


def _shrink(
    tester: DifferentialTester,
    counterexample: Counterexample,
    generator: QueryGenerator,
) -> Counterexample:
    """Delta-debug the failing statement down to a minimal reproducer."""
    original_kind = counterexample.kind
    shrink_tester = DifferentialTester(
        engine=tester.engine, configs=tester.configs, oracle=tester.oracle
    )

    def still_diverges(text: str, params) -> bool:
        fresh = shrink_tester.check_text(text, params, counterexample.seed)
        return fresh is not None and fresh.kind == original_kind

    statement = generator.statement(counterexample.seed).statement
    text, params = shrink_case(
        counterexample.query,
        counterexample.params,
        statement,
        still_diverges,
    )
    final = shrink_tester.check_text(text, params, counterexample.seed)
    return final if final is not None else counterexample


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)

    if args.replay or args.replay_dir:
        paths: List[Path] = []
        if args.replay:
            paths.append(args.replay)
        if args.replay_dir:
            paths.extend(sorted(args.replay_dir.glob("*.json")))
        if not paths:
            print(f"no corpus files under {args.replay_dir}", file=sys.stderr)
            return 2
        return _replay_files(paths)

    try:
        configs = parse_configs(args.configs)
    except GCoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    engine = build_engine()
    tester = DifferentialTester(engine=engine, configs=configs)
    generator = QueryGenerator(Vocabulary.from_engine(engine))
    deadline = (
        time.monotonic() + args.time_budget
        if args.time_budget is not None
        else None
    )

    checked = 0
    for seed in range(args.start, args.start + args.seeds):
        if deadline is not None and time.monotonic() >= deadline:
            print(f"time budget exhausted after {checked} seeds")
            break
        case = generator.statement(seed)
        if args.verbose:
            print(f"seed {seed}: {case.text}")
        counterexample = tester.check_case(case)
        checked += 1
        if counterexample is None:
            continue
        if not args.no_shrink:
            counterexample = _shrink(tester, counterexample, generator)
        print(f"counterexample at seed {seed} (kind {counterexample.kind}):")
        print(counterexample.to_json())
        if args.out is not None:
            counterexample.save(args.out)
            print(f"written to {args.out}")
        return 1

    stats = tester.stats
    print(
        f"{checked} seeds checked: {stats['executed']} executed, "
        f"{stats['parity_checked']} error-parity, {stats['skipped']} "
        f"filtered, 0 counterexamples"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
