"""Deterministic, weighted, grammar-directed G-CORE query generation.

One :class:`QueryGenerator` instance is a pure function ``seed ->
(query text, parameter values)``: every statement is generated from a
fresh ``random.Random(seed)``, so any statement of a run can be
regenerated from its seed alone — the property the corpus format, CI
replay and the shrinker all build on. Determinism across CPython
3.9–3.13 is part of the contract (``tests/fuzz/test_determinism.py``):
the generator draws only through ``Random.random`` / ``Random.randrange``
(whose algorithms are version-stable) and never iterates sets or dicts.

The grammar covers the surface catalogued in ``DEFAULT_WEIGHTS``
(:mod:`repro.fuzz.grammar`): SELECT and CONSTRUCT heads, MATCH with
node/edge/path atoms (SHORTEST / k SHORTEST / ALL / reachability, and
regular label expressions with views), OPTIONAL / WHERE / EXISTS,
GROUP BY / ORDER BY / LIMIT / OFFSET, set operations, PATH and GRAPH
heads, and parameterized literals across the full value lattice —
bool, int, float, str, Date and value sets (the latter two only through
``$params``: the concrete syntax has no date/set literals).

Generated statements are *mostly* well-formed by construction (variables
are drawn from scope, names from the catalog vocabulary); the caller
applies ``engine.analyze`` as the final generate-time filter and skips
statements with error diagnostics (except for the deliberately injected
unknown-name faults, which feed the error-parity oracle).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..lang import ast
from ..lang.pretty import pretty_statement
from ..model.values import Date
from .grammar import DEFAULT_WEIGHTS, GraphVocab, Vocabulary

__all__ = ["GeneratedCase", "QueryGenerator"]

_AGGREGATES = ("count", "sum", "min", "max", "avg", "collect")
_BOOL_OPS = ("and", "or", "xor")
_COMPARISONS = ("eq", "neq", "lt", "le", "gt", "ge", "in")
_CMP_TOKENS = {
    "eq": "=",
    "neq": "<>",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "in": "in",
}


@dataclass(frozen=True)
class GeneratedCase:
    """One generated statement: source text + its parameter bindings."""

    seed: int
    text: str
    statement: ast.Statement
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class _Scope:
    """Variables bound by the MATCH (or FROM) part under construction."""

    nodes: List[str] = field(default_factory=list)
    edges: List[str] = field(default_factory=list)
    paths: List[str] = field(default_factory=list)
    costs: List[str] = field(default_factory=list)
    values: List[str] = field(default_factory=list)  # prop binds / columns

    def bindable(self) -> List[str]:
        return self.nodes + self.edges + self.values


class _Ctx:
    """Per-statement generation state (RNG, params, fresh-name counters)."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.params: Dict[str, Any] = {}
        self.counter = 0

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def param(self, value: Any) -> ast.Param:
        name = f"p{len(self.params)}"
        self.params[name] = value
        return ast.Param(name)


class QueryGenerator:
    """Weighted grammar-directed generator over a fixed vocabulary."""

    def __init__(
        self,
        vocab: Vocabulary,
        weights: Optional[Dict[str, float]] = None,
    ) -> None:
        self.vocab = vocab
        self.weights = dict(DEFAULT_WEIGHTS)
        if weights:
            self.weights.update(weights)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    def statement(self, seed: int) -> GeneratedCase:
        """Generate the statement addressed by *seed* (deterministic)."""
        ctx = _Ctx(random.Random(seed))
        stmt = self._query(ctx)
        return GeneratedCase(
            seed=seed,
            text=pretty_statement(stmt),
            statement=stmt,
            params=ctx.params,
        )

    def stream(self, start: int, count: int) -> Iterator[GeneratedCase]:
        """The statements of seeds ``start .. start+count-1``, in order."""
        for seed in range(start, start + count):
            yield self.statement(seed)

    # ------------------------------------------------------------------
    # Draw helpers (restricted to version-stable Random primitives)
    # ------------------------------------------------------------------
    def _chance(self, ctx: _Ctx, key: str) -> bool:
        return ctx.rng.random() < self.weights[key]

    def _pick(self, ctx: _Ctx, seq: Sequence[Any]) -> Any:
        return seq[ctx.rng.randrange(len(seq))]

    def _weighted(self, ctx: _Ctx, group: str, options: Sequence[str]) -> str:
        total = sum(self.weights[f"{group}.{name}"] for name in options)
        point = ctx.rng.random() * total
        for name in options:
            point -= self.weights[f"{group}.{name}"]
            if point <= 0:
                return name
        return options[-1]

    def _misspell(self, ctx: _Ctx, name: str) -> str:
        from ..lang.lexer import KEYWORDS

        if len(name) > 2 and name[:-1].upper() not in KEYWORDS:
            return name[:-1]  # "orders" -> "order" would hit a keyword
        return name + "x"

    def _maybe_fault_name(self, ctx: _Ctx, name: str) -> str:
        if self._chance(ctx, "fault.unknown_name"):
            return self._misspell(ctx, name)
        return name

    # ------------------------------------------------------------------
    # Statement / query level
    # ------------------------------------------------------------------
    def _query(self, ctx: _Ctx, depth: int = 0) -> ast.Query:
        heads: List[Any] = []
        local_views: List[str] = []
        local_graphs: List[str] = []
        if depth == 0 and self._chance(ctx, "query.path_clause"):
            clause = self._path_clause(ctx)
            heads.append(clause)
            local_views.append(clause.name)
        if depth == 0 and self._chance(ctx, "query.graph_clause"):
            clause = self._graph_clause(ctx)
            heads.append(clause)
            local_graphs.append(clause.name)
        body = self._body(ctx, depth, local_views, local_graphs)
        return ast.Query(tuple(heads), body)

    def _body(
        self,
        ctx: _Ctx,
        depth: int,
        local_views: List[str],
        local_graphs: List[str],
    ) -> ast.QueryBody:
        select_head = self._chance(ctx, "head.select")
        if not select_head and depth == 0 and self._chance(ctx, "body.setop"):
            # Set operations are defined over *graph* queries only.
            op = self._weighted(ctx, "setop", ("union", "intersect", "minus"))
            left = self._setop_operand(ctx, local_views, local_graphs)
            right = self._setop_operand(ctx, local_views, local_graphs)
            return ast.SetOpQuery(op, left, right)
        return self._basic(ctx, select_head, depth, local_views, local_graphs)

    def _setop_operand(
        self,
        ctx: _Ctx,
        local_views: List[str],
        local_graphs: List[str],
    ) -> ast.QueryBody:
        if self._chance(ctx, "body.graph_ref"):
            name = self._pick(ctx, self.vocab.graph_names + tuple(local_graphs))
            return ast.GraphRefQuery(self._maybe_fault_name(ctx, name))
        return self._basic(ctx, False, 1, local_views, local_graphs)

    def _basic(
        self,
        ctx: _Ctx,
        select_head: bool,
        depth: int,
        local_views: List[str],
        local_graphs: List[str],
    ) -> ast.BasicQuery:
        if select_head and self.vocab.tables and self._chance(ctx, "basic.from_table"):
            table, columns = self._pick(ctx, self.vocab.tables)
            scope = _Scope(values=list(columns))
            head = self._select_head(ctx, scope, None)
            return ast.BasicQuery(
                head=head,
                from_table=self._maybe_fault_name(ctx, table),
            )
        gv = self.vocab.graph_named(self.vocab.default_graph)
        scope = _Scope()
        match = self._match(
            ctx,
            gv,
            scope,
            allow_all=not select_head,
            local_views=local_views,
            local_graphs=local_graphs,
            depth=depth,
        )
        if select_head:
            head: Any = self._select_head(ctx, scope, gv)
        else:
            head = self._construct_head(ctx, scope, gv, depth)
        return ast.BasicQuery(head=head, match=match)

    # ------------------------------------------------------------------
    # Heads: PATH / GRAPH clauses
    # ------------------------------------------------------------------
    def _path_clause(self, ctx: _Ctx) -> ast.PathClause:
        gv = self.vocab.graph_named(self.vocab.default_graph)
        name = ctx.fresh("pv")
        a, b, e = ctx.fresh("n"), ctx.fresh("n"), ctx.fresh("e")
        label = self._pick(ctx, gv.edge_labels) if gv.edge_labels else None
        edge = ast.EdgePattern(
            var=e, labels=((label,),) if label else ()
        )
        chain = ast.Chain(
            (ast.NodePattern(var=a), edge, ast.NodePattern(var=b))
        )
        where = None
        if gv.node_labels and ctx.rng.random() < 0.3:
            where = ast.LabelTest(b, (self._pick(ctx, gv.node_labels),))
        cost = ast.Literal(1 + ctx.rng.randrange(3))
        return ast.PathClause(name=name, chains=(chain,), where=where, cost=cost)

    def _graph_clause(self, ctx: _Ctx) -> ast.GraphClause:
        gv = self.vocab.graph_named(self.vocab.default_graph)
        name = ctx.fresh("g")
        var = ctx.fresh("n")
        labels: Tuple[Tuple[str, ...], ...] = ()
        if gv.node_labels:
            labels = ((self._pick(ctx, gv.node_labels),),)
        inner = ast.Query(
            (),
            ast.BasicQuery(
                head=ast.ConstructClause(
                    (ast.PatternItem(ast.Chain((ast.NodePattern(var=var),))),)
                ),
                match=ast.MatchClause(
                    ast.MatchBlock(
                        (
                            ast.PatternLocation(
                                ast.Chain((ast.NodePattern(var=var, labels=labels),))
                            ),
                        )
                    )
                ),
            ),
        )
        return ast.GraphClause(name=name, query=inner)

    # ------------------------------------------------------------------
    # MATCH
    # ------------------------------------------------------------------
    def _match(
        self,
        ctx: _Ctx,
        gv: GraphVocab,
        scope: _Scope,
        allow_all: bool,
        local_views: List[str],
        local_graphs: List[str],
        depth: int,
    ) -> ast.MatchClause:
        block = self._match_block(
            ctx, gv, scope, allow_all, local_views, local_graphs, depth
        )
        optionals: List[ast.MatchBlock] = []
        if depth == 0 and self._chance(ctx, "match.optional"):
            optionals.append(
                self._match_block(
                    ctx, gv, scope, False, local_views, local_graphs, depth + 1
                )
            )
        return ast.MatchClause(block, tuple(optionals))

    def _match_block(
        self,
        ctx: _Ctx,
        gv: GraphVocab,
        scope: _Scope,
        allow_all: bool,
        local_views: List[str],
        local_graphs: List[str],
        depth: int,
    ) -> ast.MatchBlock:
        patterns = [
            self._pattern_location(
                ctx, gv, scope, allow_all, local_views, local_graphs
            )
        ]
        if depth == 0 and self._chance(ctx, "match.extra_pattern"):
            patterns.append(
                self._pattern_location(
                    ctx, gv, scope, allow_all, local_views, local_graphs
                )
            )
        where = None
        if self._chance(ctx, "match.where"):
            where = self._bool_expr(ctx, gv, scope, depth=2, local_views=local_views)
        return ast.MatchBlock(tuple(patterns), where)

    def _pattern_location(
        self,
        ctx: _Ctx,
        gv: GraphVocab,
        scope: _Scope,
        allow_all: bool,
        local_views: List[str],
        local_graphs: List[str],
    ) -> ast.PatternLocation:
        on: Optional[str] = None
        if self._chance(ctx, "match.on"):
            choices = self.vocab.graph_names + tuple(local_graphs)
            on = self._maybe_fault_name(ctx, self._pick(ctx, choices))
            if on in self.vocab.graph_names:
                gv = self.vocab.graph_named(on)
        chain = self._chain(ctx, gv, scope, allow_all, local_views)
        return ast.PatternLocation(chain, on)

    def _chain(
        self,
        ctx: _Ctx,
        gv: GraphVocab,
        scope: _Scope,
        allow_all: bool,
        local_views: List[str],
    ) -> ast.Chain:
        elements: List[Any] = [self._node(ctx, gv, scope)]
        length = 0
        while length < 3 and self._chance(ctx, "chain.extend"):
            if self._chance(ctx, "connector.path"):
                elements.append(
                    self._path_elem(ctx, gv, scope, allow_all, local_views)
                )
            else:
                elements.append(self._edge(ctx, gv, scope))
            elements.append(self._node(ctx, gv, scope))
            length += 1
        return ast.Chain(tuple(elements))

    def _node(self, ctx: _Ctx, gv: GraphVocab, scope: _Scope) -> ast.NodePattern:
        var = None
        if self._chance(ctx, "node.var"):
            # Occasionally re-bind an existing node var (joins).
            if scope.nodes and ctx.rng.random() < 0.25:
                var = self._pick(ctx, scope.nodes)
            else:
                var = ctx.fresh("n")
                scope.nodes.append(var)
        labels: List[Tuple[str, ...]] = []
        if gv.node_labels and self._chance(ctx, "node.label"):
            labels.append((self._pick(ctx, gv.node_labels),))
            if self._chance(ctx, "node.second_label"):
                labels.append((self._pick(ctx, gv.node_labels),))
        prop_tests: List[Tuple[str, ast.Expr]] = []
        if gv.prop_keys and self._chance(ctx, "node.prop_test"):
            key = self._pick(ctx, gv.prop_keys)
            prop_tests.append((key, self._test_value(ctx, gv, key)))
        prop_binds: List[Tuple[str, str]] = []
        if gv.prop_keys and self._chance(ctx, "node.prop_bind"):
            key = self._pick(ctx, gv.prop_keys)
            bound = ctx.fresh("v")
            scope.values.append(bound)
            prop_binds.append((key, bound))
        return ast.NodePattern(
            var=var,
            labels=tuple(labels),
            prop_tests=tuple(prop_tests),
            prop_binds=tuple(prop_binds),
        )

    def _edge(self, ctx: _Ctx, gv: GraphVocab, scope: _Scope) -> ast.EdgePattern:
        var = None
        if self._chance(ctx, "edge.var"):
            var = ctx.fresh("e")
            scope.edges.append(var)
        labels: Tuple[Tuple[str, ...], ...] = ()
        if gv.edge_labels and self._chance(ctx, "edge.label"):
            count = 2 if ctx.rng.random() < 0.2 and len(gv.edge_labels) > 1 else 1
            group = tuple(
                self._pick(ctx, gv.edge_labels) for _ in range(count)
            )
            labels = (group,)
        prop_tests: List[Tuple[str, ast.Expr]] = []
        if gv.prop_keys and self._chance(ctx, "edge.prop_test"):
            key = self._pick(ctx, gv.prop_keys)
            prop_tests.append((key, self._test_value(ctx, gv, key)))
        if self._chance(ctx, "edge.in"):
            direction = ast.IN
        elif self._chance(ctx, "edge.undirected"):
            direction = ast.UNDIRECTED
        else:
            direction = ast.OUT
        return ast.EdgePattern(
            var=var,
            direction=direction,
            labels=labels,
            prop_tests=tuple(prop_tests),
        )

    def _path_elem(
        self,
        ctx: _Ctx,
        gv: GraphVocab,
        scope: _Scope,
        allow_all: bool,
        local_views: List[str],
    ) -> ast.PathPatternElem:
        modes = ["shortest", "kshortest", "reach"]
        if allow_all:
            modes.insert(2, "all")
        mode_key = self._weighted(ctx, "path.mode", tuple(modes))
        mode = {"kshortest": "shortest"}.get(mode_key, mode_key)
        count = 1 + ctx.rng.randrange(2, 4) if mode_key == "kshortest" else 1
        stored = bool(gv.path_labels) and self._chance(ctx, "path.stored")
        var = None
        cost_var = None
        if mode_key != "reach" and self._chance(ctx, "path.var"):
            var = ctx.fresh("p")
            scope.paths.append(var)
            if self._chance(ctx, "path.cost_var"):
                cost_var = ctx.fresh("c")
                scope.costs.append(cost_var)
        if stored:
            # The parser requires a variable right after ``@``, and an
            # unprefixed stored element always parses as mode=shortest.
            if var is None:
                var = ctx.fresh("p")
                scope.paths.append(var)
            if mode == "reach":
                mode = "shortest"
            labels = ((self._pick(ctx, gv.path_labels),),)
            return ast.PathPatternElem(
                var=var, mode=mode, count=count, stored=True, labels=labels
            )
        regex = self._regex(ctx, gv, depth=2, local_views=local_views)
        if mode == "shortest" and count == 1 and var is None:
            # Prints as ``-/<regex>/->``, which the parser reads as a
            # reachability test; keep the AST in the shape it re-parses to.
            mode = "reach"
        return ast.PathPatternElem(
            var=var,
            mode=mode,
            count=count,
            regex=regex,
            cost_var=cost_var,
        )

    # ------------------------------------------------------------------
    # Regular path expressions
    # ------------------------------------------------------------------
    def _regex(
        self,
        ctx: _Ctx,
        gv: GraphVocab,
        depth: int,
        local_views: List[str],
    ) -> ast.RegexExpr:
        leaves = ["label", "any", "node_test"]
        views = tuple(self.vocab.path_views) + tuple(local_views)
        if views:
            leaves.append("view")
        options = list(leaves)
        if depth > 0:
            options += ["concat", "alt", "star", "plus", "opt", "repeat"]
        kind = self._weighted(ctx, "regex", tuple(options))
        if kind == "label":
            label = (
                self._pick(ctx, gv.edge_labels) if gv.edge_labels else "knows"
            )
            return ast.RLabel(label, inverse=self._chance(ctx, "regex.inverse"))
        if kind == "any":
            return ast.RAnyEdge(inverse=self._chance(ctx, "regex.inverse"))
        if kind == "node_test":
            label = (
                self._pick(ctx, gv.node_labels) if gv.node_labels else "Person"
            )
            return ast.RNodeTest(label)
        if kind == "view":
            return ast.RView(self._maybe_fault_name(ctx, self._pick(ctx, views)))
        if kind in ("concat", "alt"):
            count = 2 + (1 if ctx.rng.random() < 0.25 else 0)
            items = tuple(
                self._regex(ctx, gv, depth - 1, local_views) for _ in range(count)
            )
            return ast.RConcat(items) if kind == "concat" else ast.RAlt(items)
        item = self._regex(ctx, gv, 0, local_views)
        if kind == "star":
            return ast.RStar(item)
        if kind == "plus":
            return ast.RPlus(item)
        if kind == "opt":
            return ast.ROpt(item)
        low = ctx.rng.randrange(0, 2)
        high = low + 1 + ctx.rng.randrange(2)
        return ast.RRepeat(item, low, high)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _test_value(self, ctx: _Ctx, gv: GraphVocab, key: str) -> ast.Expr:
        """A value expression for a ``{key = ...}`` property test."""
        pool = gv.values_for(key)
        if pool and ctx.rng.random() < 0.8:
            value = self._pick(ctx, pool)
        else:
            value = self._literal_value(ctx, gv)
        return self._value_expr(ctx, value)

    def _value_expr(self, ctx: _Ctx, value: Any) -> ast.Expr:
        """Render *value* inline when the syntax allows, else as a $param."""
        inline_ok = isinstance(value, (bool, int, float, str))
        if not inline_ok or self._chance(ctx, "expr.param_literal"):
            return ctx.param(value)
        if not isinstance(value, bool) and isinstance(value, (int, float)):
            if value < 0:
                # The parser reads "-2" as Unary("-", Literal(2)); emit
                # that shape so pretty(statement) parses back identical.
                return ast.Unary("-", ast.Literal(-value))
        return ast.Literal(value)

    def _literal_value(self, ctx: _Ctx, gv: GraphVocab) -> Any:
        kind = self._weighted(
            ctx, "lit", ("bool", "int", "float", "str", "date", "set")
        )
        if kind == "bool":
            return ctx.rng.random() < 0.5
        if kind == "int":
            return ctx.rng.randrange(-3, 12)
        if kind == "float":
            return ctx.rng.randrange(-6, 25) / 4.0
        if kind == "str":
            pool = [values for _key, values in gv.prop_values if values]
            if pool and ctx.rng.random() < 0.6:
                candidates = [
                    v for v in self._pick(ctx, pool) if isinstance(v, str)
                ]
                if candidates:
                    return self._pick(ctx, candidates)
            return self._pick(ctx, ("x", "Acme", "Wagner", "HAL", ""))
        if kind == "date":
            return self._pick(ctx, self.vocab.dates)
        # value set: 1-3 scalars of one shape
        base = self._weighted(ctx, "lit", ("int", "str", "date"))
        size = 1 + ctx.rng.randrange(3)
        members = []
        for _ in range(size):
            if base == "int":
                members.append(ctx.rng.randrange(-3, 12))
            elif base == "str":
                members.append(self._pick(ctx, ("x", "Acme", "Wagner", "HAL")))
            else:
                members.append(self._pick(ctx, self.vocab.dates))
        return frozenset(members)

    def _operand(self, ctx: _Ctx, gv: GraphVocab, scope: _Scope) -> ast.Expr:
        """A scalar-ish operand over the current scope."""
        bindable = scope.bindable()
        roll = ctx.rng.random()
        if bindable and roll < 0.62:
            var = self._pick(ctx, bindable)
            if var in scope.values or not gv.prop_keys or ctx.rng.random() < 0.2:
                return ast.Var(var)
            return ast.Prop(ast.Var(var), self._pick(ctx, gv.prop_keys))
        if scope.costs and roll < 0.70:
            return ast.Var(self._pick(ctx, scope.costs))
        if scope.paths and self._chance(ctx, "expr.func"):
            fn = self._pick(ctx, ("length", "cost", "size"))
            return ast.FuncCall(fn, (ast.Var(self._pick(ctx, scope.paths)),))
        if bindable and self._chance(ctx, "expr.func"):
            var = self._pick(ctx, bindable)
            fn = self._pick(ctx, ("id", "labels", "tostring"))
            return ast.FuncCall(fn, (ast.Var(var),))
        return self._value_expr(ctx, self._literal_value(ctx, gv))

    def _comparison(
        self, ctx: _Ctx, gv: GraphVocab, scope: _Scope
    ) -> ast.Expr:
        op_key = self._weighted(ctx, "cmp", _COMPARISONS)
        op = _CMP_TOKENS[op_key]
        left = self._operand(ctx, gv, scope)
        if op == "in":
            # scalar IN property-set (properties are value sets)
            targets = [v for v in scope.nodes + scope.edges]
            if targets and gv.prop_keys:
                var = self._pick(ctx, targets)
                right: ast.Expr = ast.Prop(
                    ast.Var(var), self._pick(ctx, gv.prop_keys)
                )
            else:
                right = self._value_expr(ctx, self._literal_value(ctx, gv))
            return ast.Binary("in", left, right)
        if self._chance(ctx, "expr.prop_vs_prop"):
            right = self._operand(ctx, gv, scope)
        else:
            right = self._value_expr(ctx, self._literal_value(ctx, gv))
        return ast.Binary(op, left, right)

    def _bool_expr(
        self,
        ctx: _Ctx,
        gv: GraphVocab,
        scope: _Scope,
        depth: int,
        local_views: List[str],
    ) -> ast.Expr:
        if depth > 0 and self._chance(ctx, "expr.binary_bool"):
            op = self._pick(ctx, _BOOL_OPS)
            left = self._bool_expr(ctx, gv, scope, depth - 1, local_views)
            right = self._bool_expr(ctx, gv, scope, depth - 1, local_views)
            return ast.Binary(op, left, right)
        if self._chance(ctx, "expr.not"):
            return ast.Unary(
                "not", self._bool_expr(ctx, gv, scope, 0, local_views)
            )
        if scope.nodes and gv.node_labels and self._chance(ctx, "expr.label_test"):
            return ast.LabelTest(
                self._pick(ctx, scope.nodes),
                (self._pick(ctx, gv.node_labels),),
            )
        if scope.nodes and self._chance(ctx, "expr.exists_pattern"):
            inner_scope = _Scope(nodes=list(scope.nodes))
            chain = self._exists_chain(ctx, gv, inner_scope)
            return ast.ExistsPattern(chain)
        if self._chance(ctx, "expr.exists_query"):
            return ast.ExistsQuery(self._exists_query(ctx, gv))
        if self._chance(ctx, "expr.case"):
            condition = self._comparison(ctx, gv, scope)
            return ast.Binary(
                "=",
                ast.CaseExpr(
                    whens=((condition, ast.Literal(1)),),
                    default=ast.Literal(0),
                ),
                ast.Literal(1),
            )
        return self._comparison(ctx, gv, scope)

    def _exists_chain(
        self, ctx: _Ctx, gv: GraphVocab, scope: _Scope
    ) -> ast.Chain:
        start = self._pick(ctx, scope.nodes)
        edge = ast.EdgePattern(
            labels=((self._pick(ctx, gv.edge_labels),),)
            if gv.edge_labels
            else (),
            direction=ast.IN if ctx.rng.random() < 0.25 else ast.OUT,
        )
        end_labels: Tuple[Tuple[str, ...], ...] = ()
        if gv.node_labels and ctx.rng.random() < 0.5:
            end_labels = ((self._pick(ctx, gv.node_labels),),)
        return ast.Chain(
            (
                ast.NodePattern(var=start),
                edge,
                ast.NodePattern(labels=end_labels),
            )
        )

    def _exists_query(self, ctx: _Ctx, gv: GraphVocab) -> ast.Query:
        var = ctx.fresh("n")
        labels: Tuple[Tuple[str, ...], ...] = ()
        if gv.node_labels:
            labels = ((self._pick(ctx, gv.node_labels),),)
        return ast.Query(
            (),
            ast.BasicQuery(
                head=ast.ConstructClause(
                    (ast.PatternItem(ast.Chain((ast.NodePattern(var=var),))),)
                ),
                match=ast.MatchClause(
                    ast.MatchBlock(
                        (
                            ast.PatternLocation(
                                ast.Chain(
                                    (ast.NodePattern(var=var, labels=labels),)
                                )
                            ),
                        )
                    )
                ),
            ),
        )

    # ------------------------------------------------------------------
    # SELECT head
    # ------------------------------------------------------------------
    def _aggregate_call(
        self, ctx: _Ctx, gv: Optional[GraphVocab], scope: _Scope
    ) -> ast.Expr:
        name = self._pick(ctx, _AGGREGATES)
        if name == "count" and ctx.rng.random() < 0.45:
            return ast.FuncCall("count", star=True)
        bindable = scope.bindable()
        if not bindable:
            return ast.FuncCall("count", star=True)
        var = self._pick(ctx, bindable)
        if gv is not None and gv.prop_keys and var not in scope.values:
            arg: ast.Expr = ast.Prop(ast.Var(var), self._pick(ctx, gv.prop_keys))
        else:
            arg = ast.Var(var)
        distinct = name in ("count", "collect") and ctx.rng.random() < 0.3
        return ast.FuncCall(name, (arg,), distinct=distinct)

    def _projection_expr(
        self, ctx: _Ctx, gv: Optional[GraphVocab], scope: _Scope
    ) -> ast.Expr:
        bindable = scope.bindable()
        if not bindable:
            return ast.Literal(1)
        var = self._pick(ctx, bindable)
        roll = ctx.rng.random()
        if var in scope.values or gv is None or not gv.prop_keys or roll < 0.3:
            return ast.Var(var)
        if roll < 0.85:
            return ast.Prop(ast.Var(var), self._pick(ctx, gv.prop_keys))
        fn = self._pick(ctx, ("id", "labels", "tostring"))
        return ast.FuncCall(fn, (ast.Var(var),))

    def _select_head(
        self, ctx: _Ctx, scope: _Scope, gv: Optional[GraphVocab]
    ) -> ast.SelectClause:
        items: List[ast.SelectItem] = []
        group_by: Tuple[ast.Expr, ...] = ()
        alias_index = 0

        def alias() -> Optional[str]:
            nonlocal alias_index
            if self._chance(ctx, "select.alias"):
                alias_index += 1
                return f"a{alias_index}"
            return None

        if scope.bindable() and self._chance(ctx, "select.group_by"):
            keys = [self._projection_expr(ctx, gv, scope)]
            if ctx.rng.random() < 0.3:
                keys.append(self._projection_expr(ctx, gv, scope))
            group_by = tuple(keys)
            items = [ast.SelectItem(key, f"k{i}") for i, key in enumerate(keys)]
            items.append(
                ast.SelectItem(self._aggregate_call(ctx, gv, scope), "agg")
            )
        elif self._chance(ctx, "select.aggregate"):
            items = [ast.SelectItem(self._aggregate_call(ctx, gv, scope), "agg")]
            if ctx.rng.random() < 0.3:
                items.append(
                    ast.SelectItem(self._aggregate_call(ctx, gv, scope), "agg2")
                )
        else:
            items = [ast.SelectItem(self._projection_expr(ctx, gv, scope), alias())]
            while len(items) < 3 and self._chance(ctx, "select.extra_item"):
                items.append(
                    ast.SelectItem(self._projection_expr(ctx, gv, scope), alias())
                )
        order_by: Tuple[Tuple[ast.Expr, bool], ...] = ()
        if self._chance(ctx, "select.order_by"):
            keys = []
            for item in items[: 1 + ctx.rng.randrange(2)]:
                ascending = not self._chance(ctx, "select.order_desc")
                keys.append((item.expr, ascending))
            order_by = tuple(keys)
        limit = offset = None
        if self._chance(ctx, "select.limit"):
            limit = 1 + ctx.rng.randrange(8)
            if self._chance(ctx, "select.offset"):
                offset = ctx.rng.randrange(4)
        return ast.SelectClause(
            items=tuple(items),
            distinct=self._chance(ctx, "select.distinct"),
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    # ------------------------------------------------------------------
    # CONSTRUCT head
    # ------------------------------------------------------------------
    def _construct_head(
        self, ctx: _Ctx, scope: _Scope, gv: GraphVocab, depth: int
    ) -> ast.ConstructClause:
        items: List[Any] = [self._construct_item(ctx, scope, gv)]
        if depth == 0 and self._chance(ctx, "construct.extra_item"):
            if self._chance(ctx, "construct.graph_ref"):
                items.append(
                    ast.GraphRefItem(self._pick(ctx, self.vocab.graph_names))
                )
            else:
                items.append(self._construct_item(ctx, scope, gv))
        return ast.ConstructClause(tuple(items))

    def _construct_node(
        self, ctx: _Ctx, scope: _Scope, gv: GraphVocab
    ) -> ast.NodePattern:
        if scope.nodes and not self._chance(ctx, "construct.fresh_node"):
            return ast.NodePattern(var=self._pick(ctx, scope.nodes))
        var = ctx.fresh("x")
        group: Optional[Tuple[ast.Expr, ...]] = None
        if scope.nodes and gv.prop_keys and self._chance(ctx, "construct.group"):
            group = (
                ast.Prop(
                    ast.Var(self._pick(ctx, scope.nodes)),
                    self._pick(ctx, gv.prop_keys),
                ),
            )
        assignments: List[Tuple[str, ast.Expr]] = []
        if self._chance(ctx, "construct.prop_assign"):
            key = self._pick(ctx, gv.prop_keys) if gv.prop_keys else "name"
            assignments.append((key, self._operand(ctx, gv, scope)))
        labels: Tuple[Tuple[str, ...], ...] = ()
        if gv.node_labels and ctx.rng.random() < 0.5:
            labels = ((self._pick(ctx, gv.node_labels),),)
        return ast.NodePattern(
            var=var,
            labels=labels,
            group=group,
            assignments=tuple(assignments),
        )

    def _construct_item(
        self, ctx: _Ctx, scope: _Scope, gv: GraphVocab
    ) -> ast.PatternItem:
        first = self._construct_node(ctx, scope, gv)
        elements: List[Any] = [first]
        if self._chance(ctx, "construct.edge"):
            label = (
                self._pick(ctx, gv.edge_labels) if gv.edge_labels else "linked"
            )
            assignments: Tuple[Tuple[str, ast.Expr], ...] = ()
            if self._chance(ctx, "construct.prop_assign"):
                key = self._pick(ctx, gv.prop_keys) if gv.prop_keys else "w"
                assignments = ((key, self._operand(ctx, gv, scope)),)
            elements.append(
                ast.EdgePattern(labels=((label,),), assignments=assignments)
            )
            elements.append(self._construct_node(ctx, scope, gv))
        chain = ast.Chain(tuple(elements))
        when = None
        if scope.bindable() and self._chance(ctx, "construct.when"):
            when = self._bool_expr(ctx, gv, scope, depth=1, local_views=[])
        construct_vars = [
            element.var
            for element in chain.elements
            if isinstance(element, ast.NodePattern) and element.var is not None
        ]
        sets: List[ast.SetAssign] = []
        if construct_vars and self._chance(ctx, "construct.set"):
            var = self._pick(ctx, construct_vars)
            if gv.node_labels and ctx.rng.random() < 0.5:
                sets.append(
                    ast.SetAssign(var, label=self._pick(ctx, gv.node_labels))
                )
            else:
                key = self._pick(ctx, gv.prop_keys) if gv.prop_keys else "mark"
                sets.append(
                    ast.SetAssign(var, key=key, expr=self._operand(ctx, gv, scope))
                )
        removes: List[ast.RemoveAssign] = []
        if construct_vars and self._chance(ctx, "construct.remove"):
            var = self._pick(ctx, construct_vars)
            if gv.prop_keys and ctx.rng.random() < 0.7:
                removes.append(
                    ast.RemoveAssign(var, key=self._pick(ctx, gv.prop_keys))
                )
            elif gv.node_labels:
                removes.append(
                    ast.RemoveAssign(var, label=self._pick(ctx, gv.node_labels))
                )
        return ast.PatternItem(
            chain=chain,
            when=when,
            sets=tuple(sets),
            removes=tuple(removes),
        )
