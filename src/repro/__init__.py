"""repro — a complete Python reproduction of G-CORE (SIGMOD 2018).

G-CORE is the graph query language designed by the LDBC Graph Query
Language Task Force: *composable* (queries consume and produce graphs)
with *paths as first-class citizens* (the Path Property Graph model).
This package implements the full language and data model:

* :class:`~repro.model.graph.PathPropertyGraph` — the PPG data model
  (Definition 2.1) with nodes, edges and *stored paths*, multi-labels and
  set-valued properties;
* :class:`~repro.engine.GCoreEngine` — parse + evaluate full G-CORE:
  MATCH / OPTIONAL / WHERE, CONSTRUCT with grouping and SET/REMOVE/WHEN,
  k-SHORTEST / ALL / reachability path patterns, weighted PATH views,
  EXISTS subqueries, UNION/INTERSECT/MINUS on graphs, GRAPH VIEWs, and
  the Section 5 tabular extensions (SELECT, FROM tables, tables as
  graphs);
* :mod:`repro.datasets` — the paper's toy instances plus a deterministic
  SNB-like generator for scaling experiments.

Quickstart::

    from repro import GCoreEngine
    from repro.datasets import social_graph

    engine = GCoreEngine()
    engine.register_graph("social_graph", social_graph(), default=True)
    g = engine.run("CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'")
    print(g.describe())
"""

from .analysis import AnalysisResult, Diagnostic, analyze
from .config import DEFAULT_CONFIG, NAIVE_CONFIG, ExecutionConfig
from .engine import EngineSnapshot, GCoreEngine
from .errors import (
    AnalysisError,
    CostError,
    DeltaError,
    EvaluationError,
    GCoreError,
    GraphModelError,
    LexerError,
    ParseError,
    SemanticError,
    StaleViewError,
    UnknownGraphError,
    UnknownNameError,
    UnknownPathViewError,
    UnknownTableError,
    ValidationError,
)
from .model.builder import GraphBuilder
from .model.delta import GraphDelta, apply_delta
from .model.graph import PathPropertyGraph
from .model.schema import GraphSchema, snb_schema
from .model.values import Date
from .table import Table

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "Diagnostic",
    "analyze",
    "DEFAULT_CONFIG",
    "NAIVE_CONFIG",
    "EngineSnapshot",
    "ExecutionConfig",
    "GCoreEngine",
    "GraphBuilder",
    "GraphDelta",
    "GraphSchema",
    "apply_delta",
    "snb_schema",
    "PathPropertyGraph",
    "Table",
    "Date",
    "GCoreError",
    "GraphModelError",
    "LexerError",
    "ParseError",
    "SemanticError",
    "EvaluationError",
    "CostError",
    "DeltaError",
    "StaleViewError",
    "UnknownGraphError",
    "UnknownNameError",
    "UnknownTableError",
    "UnknownPathViewError",
    "ValidationError",
    "__version__",
]
