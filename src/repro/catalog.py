"""The graph catalog: named graphs, views, tables and path views.

G-CORE queries reference graphs by name (``ON social_graph``), create
persistent views (``GRAPH VIEW``), and — with the Section 5 extensions —
reference tables. The catalog is the engine-level registry for all of
them. Tables referenced as graph locations are converted on demand into
the "isolated-node graph" interpretation of Section 5 and cached.

Since the mutation layer (:mod:`repro.model.delta`) the catalog also
tracks *change history*: every base graph carries an **epoch** (bumped by
each re-registration or applied delta) and a **changelog** of
:class:`ChangeRecord` entries. Materialized views remember the epoch and
graph object of each dependency at materialization time, which makes
staleness detection (:meth:`Catalog.is_view_stale`) and incremental
maintenance (:mod:`repro.eval.maintenance`) possible: a view whose
dependencies only advanced through recorded deltas can be patched instead
of recomputed.

The same epoch machinery powers **MVCC snapshot reads**
(:class:`CatalogSnapshot`): :meth:`Catalog.acquire_snapshot` captures an
immutable view of every name in the catalog and takes a *reader
refcount* on each pinned base-graph version. Updates landing afterwards
supersede the live entry but **retain** the superseded graph version
while any snapshot still pins it; :meth:`Catalog.release_snapshot` drops
the refcounts and prunes retained versions the moment their last reader
leaves (see ``docs/consistency.md``). Graphs are immutable, so a
snapshot needs no copies — pinning is reference bookkeeping, and a
reader's whole world (graphs, view materializations, tables, path views,
the default-graph pointer) stays frozen for the snapshot's lifetime.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    List,
    NamedTuple,
    Optional,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from .errors import SemanticError, UnknownGraphError, UnknownTableError
from .model.builder import GraphBuilder
from .model.graph import PathPropertyGraph
from .table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lang import ast
    from .model.delta import DeltaEffects, GraphDelta
    from .model.schema import GraphSchema

__all__ = [
    "Catalog",
    "CatalogSnapshot",
    "ChangeRecord",
    "ViewMeta",
    "table_as_graph",
]


def table_as_graph(table: Table, name: str = "") -> PathPropertyGraph:
    """Interpret a table as a graph of isolated nodes (Section 5).

    Each row becomes one unlabeled node whose properties are the row's
    non-null column values.
    """
    builder = GraphBuilder(name=name or table.name)
    for index, row in enumerate(table.rows):
        properties = {
            column: value
            for column, value in zip(table.columns, row)
            if value is not None
        }
        builder.add_node(f"{name or table.name or 'row'}#{index}",
                         properties=properties)
    return builder.build()


class ChangeRecord(NamedTuple):
    """One entry of a base graph's changelog.

    ``kind`` is ``"delta"`` for an applied :class:`GraphDelta` (``delta``
    and ``effects`` are set) or ``"replace"`` for a wholesale
    re-registration (both are None — incremental maintenance cannot see
    through a replacement). ``before``/``after`` pin the graph objects on
    either side, letting maintenance verify changelog continuity by
    identity.
    """

    epoch: int
    kind: str
    delta: Optional["GraphDelta"]
    effects: Optional["DeltaEffects"]
    before: Optional[PathPropertyGraph]
    after: PathPropertyGraph


class ViewMeta:
    """Maintenance bookkeeping of one materialized GRAPH VIEW."""

    __slots__ = ("deps", "snapshots", "plan", "state", "default_name")

    def __init__(self, deps, snapshots, plan, state, default_name) -> None:
        #: dependency name -> epoch at materialization time
        self.deps: Dict[str, int] = deps
        #: dependency name -> graph object at materialization time
        self.snapshots: Dict[str, PathPropertyGraph] = snapshots
        #: the static maintenance analysis (repro.eval.maintenance.ViewPlan)
        self.plan = plan
        #: incremental support counts (repro.eval.maintenance.ViewState)
        self.state = state
        #: the default-graph name at materialization time, when the query
        #: has ON-less patterns (None otherwise) — moving the default
        #: pointer changes such a view's meaning, so it counts as stale.
        self.default_name: Optional[str] = default_name


class CatalogSnapshot:
    """An immutable, point-in-time view of a :class:`Catalog`.

    Obtained from :meth:`Catalog.acquire_snapshot` (usually via
    :meth:`GCoreEngine.snapshot <repro.engine.GCoreEngine.snapshot>`). A
    snapshot resolves every read the evaluator performs — graphs, view
    materializations, tables-as-graphs, path views, the default-graph
    pointer — against the state captured at acquisition time, so a query
    holding one sees a single consistent catalog version no matter how
    many updates land concurrently. Mutating operations raise: snapshots
    are strictly read-only (writes go through the live catalog).

    Snapshots pin the base-graph versions they captured (a reader
    refcount in the owning catalog); call :meth:`release` — or use the
    snapshot as a context manager — when done, so superseded versions
    can be pruned. Releasing is idempotent. Reads keep working after
    release (the Python references survive); only the catalog-side
    retention accounting ends.
    """

    __slots__ = (
        "_catalog",
        "_graphs",
        "_tables",
        "_path_views",
        "_schemas",
        "_stale",
        "_table_graph_cache",
        "_pinned",
        "_base_names",
        "_views",
        "epochs",
        "default_graph_name",
        "released",
    )

    def __init__(self, catalog: "Catalog") -> None:
        self._catalog = catalog
        self._graphs: Dict[str, PathPropertyGraph] = dict(catalog._graphs)
        self._graphs.update(catalog._view_cache)
        self._tables: Dict[str, Table] = dict(catalog._tables)
        self._path_views = dict(catalog._path_views)
        self._schemas = dict(catalog._schemas)
        self._base_names = frozenset(catalog._graphs)
        self._views: Dict[str, "ast.Query"] = dict(catalog._views)
        self._stale = frozenset(catalog.stale_views())
        self._table_graph_cache: Dict[str, PathPropertyGraph] = {}
        #: name -> epoch at acquisition (base graphs, views and tables).
        self.epochs: Dict[str, int] = dict(catalog._epochs)
        #: the (name, epoch) base-graph versions this snapshot refcounts.
        self._pinned: List[Tuple[str, int]] = [
            (name, self.epochs.get(name, 0)) for name in catalog._graphs
        ]
        self.default_graph_name = catalog.default_graph_name
        self.released = False

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "CatalogSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def release(self) -> None:
        """Drop this snapshot's reader refcounts (idempotent)."""
        self._catalog.release_snapshot(self)

    # -- read API (mirrors Catalog) -------------------------------------
    def has_graph(self, name: str) -> bool:
        return name in self._graphs or name in self._tables

    def graph(self, name: str) -> PathPropertyGraph:
        """Resolve *name* to the graph version captured at acquisition."""
        if name in self._graphs:
            return self._graphs[name]
        if name in self._tables:
            if name not in self._table_graph_cache:
                self._table_graph_cache[name] = table_as_graph(
                    self._tables[name], name
                )
            return self._table_graph_cache[name]
        raise UnknownGraphError(name, candidates=[*self._graphs, *self._tables])

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name, candidates=self._tables) from None

    def path_view(self, name: str) -> Optional["ast.PathClause"]:
        return self._path_views.get(name)

    def schema(self, name: str) -> Optional["GraphSchema"]:
        """The schema attached to base graph *name* at acquisition."""
        return self._schemas.get(name)

    def is_base_graph(self, name: str) -> bool:
        """True iff *name* was a directly-registered base graph."""
        return name in self._base_names

    def is_view(self, name: str) -> bool:
        return name in self._views

    def view_query(self, name: str) -> Optional["ast.Query"]:
        return self._views.get(name)

    def default_graph(self) -> Optional[PathPropertyGraph]:
        if self.default_graph_name is None:
            return None
        return self.graph(self.default_graph_name)

    def epoch(self, name: str) -> int:
        """The captured change epoch of *name* (0 for unknown)."""
        return self.epochs.get(name, 0)

    def is_view_stale(self, name: str) -> bool:
        """Was view *name* already stale when this snapshot was taken?

        Within a snapshot nothing changes, so this is a frozen fact: a
        view that was fresh at acquisition stays fresh for every reader
        of this snapshot, even while the live catalog moves on.
        """
        return name in self._stale

    def stale_views(self) -> List[str]:
        return sorted(self._stale)

    def graph_names(self) -> List[str]:
        return sorted(self._graphs)

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # -- writes are rejected --------------------------------------------
    def _read_only(self, operation: str):
        raise SemanticError(
            f"catalog snapshot is read-only: {operation} must run against "
            f"the live catalog"
        )

    def register_graph(self, *args, **kwargs):
        self._read_only("register_graph")

    def register_table(self, *args, **kwargs):
        self._read_only("register_table")

    def register_view(self, *args, **kwargs):
        self._read_only("register_view (GRAPH VIEW)")

    def register_path_view(self, *args, **kwargs):
        self._read_only("register_path_view")

    def commit_update(self, *args, **kwargs):
        self._read_only("commit_update")


class Catalog:
    """Engine-level registry of graphs, views and tables."""

    def __init__(self) -> None:
        self._graphs: Dict[str, PathPropertyGraph] = {}
        self._tables: Dict[str, Table] = {}
        self._views: Dict[str, "ast.Query"] = {}
        self._view_cache: Dict[str, PathPropertyGraph] = {}
        self._view_meta: Dict[str, ViewMeta] = {}
        self._table_graph_cache: Dict[str, PathPropertyGraph] = {}
        self._path_views: Dict[str, "ast.PathClause"] = {}
        self._schemas: Dict[str, "GraphSchema"] = {}
        self._epochs: Dict[str, int] = {}
        self._changelogs: Dict[str, List[ChangeRecord]] = {}
        # MVCC reader bookkeeping: refcounts per pinned (name, epoch)
        # base-graph version, and the superseded graph versions retained
        # while at least one snapshot still pins them.
        self._pins: Dict[Tuple[str, int], int] = {}
        self._retained: Dict[str, Dict[int, PathPropertyGraph]] = {}
        self._snapshots_taken = 0
        self._snapshots_released = 0
        self.default_graph_name: Optional[str] = None

    # ------------------------------------------------------------------
    def register_graph(
        self,
        name: str,
        graph: PathPropertyGraph,
        default: bool = False,
        schema: Optional["GraphSchema"] = None,
    ) -> None:
        """Register *graph* under *name*; optionally make it the default.

        Re-registering an existing name replaces the graph wholesale and
        appends a ``"replace"`` changelog record — dependent views become
        stale and can only be refreshed by full recomputation. An
        optional *schema* is remembered and re-checked (scoped to the
        touched objects) by every later :meth:`commit_update`.
        """
        if name in self._views:
            raise SemanticError(
                f"cannot register graph {name!r}: the name belongs to a "
                f"GRAPH VIEW (refresh or drop the view instead)"
            )
        before = self._graphs.get(name)
        named = graph.with_name(name)
        self._graphs[name] = named
        if schema is not None:
            self._schemas[name] = schema
        self._bump(name, "replace", None, None, before, named)
        if default or self.default_graph_name is None:
            self.default_graph_name = name

    def commit_update(
        self,
        name: str,
        graph: PathPropertyGraph,
        delta: "GraphDelta",
        effects: "DeltaEffects",
    ) -> None:
        """Install the result of an applied delta and record the change."""
        before = self.base_graph(name)
        named = graph.with_name(name)
        self._graphs[name] = named
        self._bump(name, "delta", delta, effects, before, named)

    #: Per-graph changelog bound. Older records are dropped; a view whose
    #: snapshot predates the retained window simply fails the continuity
    #: check in repro.eval.maintenance and falls back to a full
    #: recompute, so the cap trades only speed, never correctness.
    CHANGELOG_LIMIT = 256

    def _bump(self, name, kind, delta, effects, before, after) -> None:
        old_epoch = self._epochs.get(name, 0)
        if before is not None and self._pins.get((name, old_epoch), 0) > 0:
            # A snapshot reader still pins the superseded version: retain
            # it until release_snapshot drops the last refcount.
            self._retained.setdefault(name, {})[old_epoch] = before
        epoch = old_epoch + 1
        self._epochs[name] = epoch
        self._changelogs.setdefault(name, []).append(
            ChangeRecord(epoch, kind, delta, effects, before, after)
        )
        self._prune_changelog(name)

    def _prune_changelog(self, name: str) -> None:
        """Trim records no registered view can still consume.

        Every record up to (and including) the oldest dependent view's
        recorded epoch is already incorporated in that view's snapshot,
        so it — and the pre-delta graph object it pins — can be freed.
        Without dependents only the newest record is kept, and the hard
        ``CHANGELOG_LIMIT`` bounds memory even under a never-refreshed
        view (maintenance degrades to a full recompute past the window).
        """
        log = self._changelogs.get(name)
        if not log:
            return
        needed = [
            meta.deps[name]
            for meta in self._view_meta.values()
            if name in meta.deps
        ]
        floor = min(needed) if needed else log[-1].epoch - 1
        start = 0
        while start < len(log) and log[start].epoch <= floor:
            start += 1
        start = max(start, len(log) - self.CHANGELOG_LIMIT)
        if start:
            del log[:start]

    def register_table(self, name: str, table: Table) -> None:
        """Register a table for the Section 5 extensions."""
        if name in self._views:
            raise SemanticError(
                f"cannot register table {name!r}: the name belongs to a "
                f"GRAPH VIEW"
            )
        self._tables[name] = table.with_name(name)
        self._table_graph_cache.pop(name, None)
        self._epochs[name] = self._epochs.get(name, 0) + 1

    def register_view(
        self,
        name: str,
        query: "ast.Query",
        materialized: PathPropertyGraph,
        plan=None,
        state=None,
    ) -> None:
        """Register a GRAPH VIEW with its defining query and current result.

        Re-registering an existing view replaces its materialization (the
        refresh path); registering a view under a base graph's or table's
        name raises — the catalog resolves base graphs first, so the view
        would be silently shadowed otherwise. Dependency epochs and graph
        snapshots are recorded for staleness detection and incremental
        maintenance; *plan*/*state* carry the maintenance analysis and
        support counts of :mod:`repro.eval.maintenance`.
        """
        if name in self._graphs or name in self._tables:
            raise SemanticError(
                f"cannot register view {name!r}: the name belongs to a "
                f"{'graph' if name in self._graphs else 'table'}"
            )
        from .eval.maintenance import (  # cycle guard
            query_uses_default,
            view_dependencies,
        )

        self._views[name] = query
        self._view_cache[name] = materialized.with_name(name)
        deps: FrozenSet[str]
        if plan is not None:
            deps = frozenset(plan.deps)
        else:
            deps = view_dependencies(query, self)
        self._view_meta[name] = ViewMeta(
            deps={dep: self._epochs.get(dep, 0) for dep in deps},
            snapshots={
                dep: self.graph(dep) for dep in deps if self.has_graph(dep)
            },
            plan=plan,
            state=state,
            default_name=(
                self.default_graph_name
                if query_uses_default(query)
                else None
            ),
        )
        self._epochs[name] = self._epochs.get(name, 0) + 1
        for dep in deps:
            self._prune_changelog(dep)

    def register_path_view(self, name: str, clause: "ast.PathClause") -> None:
        """Register a persistent PATH view definition."""
        self._path_views[name] = clause

    # ------------------------------------------------------------------
    def has_graph(self, name: str) -> bool:
        return (
            name in self._graphs
            or name in self._view_cache
            or name in self._tables
        )

    def is_base_graph(self, name: str) -> bool:
        """True iff *name* is a directly-registered (mutable) base graph."""
        return name in self._graphs

    def is_view(self, name: str) -> bool:
        """True iff *name* is a registered GRAPH VIEW."""
        return name in self._views

    def base_graph(self, name: str) -> PathPropertyGraph:
        """The base graph *name*; views and tables are rejected."""
        try:
            return self._graphs[name]
        except KeyError:
            raise UnknownGraphError(name, candidates=self._graphs) from None

    def graph(self, name: str) -> PathPropertyGraph:
        """Resolve *name* to a graph: base graph, view, or table-as-graph."""
        if name in self._graphs:
            return self._graphs[name]
        if name in self._view_cache:
            return self._view_cache[name]
        if name in self._tables:
            if name not in self._table_graph_cache:
                self._table_graph_cache[name] = table_as_graph(
                    self._tables[name], name
                )
            return self._table_graph_cache[name]
        raise UnknownGraphError(
            name, candidates=[*self._graphs, *self._views, *self._tables]
        )

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name, candidates=self._tables) from None

    def schema(self, name: str) -> Optional["GraphSchema"]:
        """The schema attached to base graph *name* (None if unconstrained)."""
        return self._schemas.get(name)

    def path_view(self, name: str) -> Optional["ast.PathClause"]:
        return self._path_views.get(name)

    def view_query(self, name: str) -> Optional["ast.Query"]:
        return self._views.get(name)

    def view_meta(self, name: str) -> Optional[ViewMeta]:
        """Maintenance bookkeeping of view *name* (None when not a view)."""
        return self._view_meta.get(name)

    def default_graph(self) -> Optional[PathPropertyGraph]:
        if self.default_graph_name is None:
            return None
        return self.graph(self.default_graph_name)

    # ------------------------------------------------------------------
    # MVCC snapshots
    # ------------------------------------------------------------------
    def acquire_snapshot(self) -> CatalogSnapshot:
        """Capture a :class:`CatalogSnapshot` and refcount its versions.

        Every base-graph version visible to the snapshot gets one reader
        refcount; later updates retain superseded versions until their
        refcount drops back to zero (:meth:`release_snapshot`). The
        caller — normally :meth:`GCoreEngine.snapshot
        <repro.engine.GCoreEngine.snapshot>`, which serializes snapshot
        and update traffic behind the engine lock — owns the release.
        """
        snapshot = CatalogSnapshot(self)
        for key in snapshot._pinned:
            self._pins[key] = self._pins.get(key, 0) + 1
        self._snapshots_taken += 1
        return snapshot

    def release_snapshot(self, snapshot: CatalogSnapshot) -> None:
        """Drop *snapshot*'s refcounts and prune unpinned retained versions.

        Idempotent: releasing an already-released snapshot is a no-op.
        A retained (superseded) graph version is pruned the moment its
        reader refcount reaches zero; the live version of each name is
        never touched.
        """
        if snapshot.released:
            return
        snapshot.released = True
        self._snapshots_released += 1
        for key in snapshot._pinned:
            count = self._pins.get(key, 0) - 1
            if count > 0:
                self._pins[key] = count
                continue
            self._pins.pop(key, None)
            name, epoch = key
            versions = self._retained.get(name)
            if versions is not None:
                versions.pop(epoch, None)
                if not versions:
                    del self._retained[name]

    def retained_versions(self, name: str) -> List[int]:
        """Epochs of superseded versions of *name* still pinned by readers."""
        return sorted(self._retained.get(name, ()))

    def retained_version_count(self, name: Optional[str] = None) -> int:
        """How many superseded graph versions are currently retained.

        With *name*, counts that graph's retained versions only; without,
        the catalog-wide total. This is the observable the MVCC harness
        asserts on: the count rises while snapshot readers pin superseded
        versions and returns to zero once every reader released.
        """
        if name is not None:
            return len(self._retained.get(name, ()))
        return sum(len(v) for v in self._retained.values())

    def active_snapshot_count(self) -> int:
        """Snapshots acquired and not yet released."""
        return self._snapshots_taken - self._snapshots_released

    # ------------------------------------------------------------------
    # Change tracking
    # ------------------------------------------------------------------
    def epoch(self, name: str) -> int:
        """The change epoch of *name* (0 for never-changed/unknown)."""
        return self._epochs.get(name, 0)

    def changelog(self, name: str) -> List[ChangeRecord]:
        """The recorded change history of base graph *name* (oldest first)."""
        return list(self._changelogs.get(name, ()))

    def is_view_stale(self, name: str) -> bool:
        """Did any (transitive) dependency of view *name* change since its
        materialization? Non-views are never stale."""
        return self._stale(name, set())

    def _stale(self, name: str, visiting: Set[str]) -> bool:
        meta = self._view_meta.get(name)
        if meta is None or name in visiting:
            return False
        visiting.add(name)
        if (
            meta.default_name is not None
            and self.default_graph_name != meta.default_name
        ):
            return True  # ON-less patterns now resolve elsewhere
        for dep, epoch in meta.deps.items():
            if self._epochs.get(dep, 0) != epoch:
                return True
            if self._stale(dep, visiting):
                return True
        return False

    def stale_views(self) -> List[str]:
        """All registered views whose dependencies have changed."""
        return [name for name in sorted(self._views)
                if self.is_view_stale(name)]

    # ------------------------------------------------------------------
    def graph_names(self):
        """All resolvable graph names (base graphs and views)."""
        return sorted(set(self._graphs) | set(self._view_cache))

    def view_names(self):
        """All registered GRAPH VIEW names."""
        return sorted(self._views)

    def table_names(self):
        return sorted(self._tables)

    def path_view_names(self):
        return sorted(self._path_views)
