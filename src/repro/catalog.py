"""The graph catalog: named graphs, views, tables and path views.

G-CORE queries reference graphs by name (``ON social_graph``), create
persistent views (``GRAPH VIEW``), and — with the Section 5 extensions —
reference tables. The catalog is the engine-level registry for all of
them. Tables referenced as graph locations are converted on demand into
the "isolated-node graph" interpretation of Section 5 and cached.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from .errors import UnknownGraphError, UnknownTableError
from .model.builder import GraphBuilder
from .model.graph import PathPropertyGraph
from .table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lang import ast

__all__ = ["Catalog", "table_as_graph"]


def table_as_graph(table: Table, name: str = "") -> PathPropertyGraph:
    """Interpret a table as a graph of isolated nodes (Section 5).

    Each row becomes one unlabeled node whose properties are the row's
    non-null column values.
    """
    builder = GraphBuilder(name=name or table.name)
    for index, row in enumerate(table.rows):
        properties = {
            column: value
            for column, value in zip(table.columns, row)
            if value is not None
        }
        builder.add_node(f"{name or table.name or 'row'}#{index}",
                         properties=properties)
    return builder.build()


class Catalog:
    """Engine-level registry of graphs, views and tables."""

    def __init__(self) -> None:
        self._graphs: Dict[str, PathPropertyGraph] = {}
        self._tables: Dict[str, Table] = {}
        self._views: Dict[str, "ast.Query"] = {}
        self._view_cache: Dict[str, PathPropertyGraph] = {}
        self._table_graph_cache: Dict[str, PathPropertyGraph] = {}
        self._path_views: Dict[str, "ast.PathClause"] = {}
        self.default_graph_name: Optional[str] = None

    # ------------------------------------------------------------------
    def register_graph(
        self, name: str, graph: PathPropertyGraph, default: bool = False
    ) -> None:
        """Register *graph* under *name*; optionally make it the default."""
        self._graphs[name] = graph.with_name(name)
        if default or self.default_graph_name is None:
            self.default_graph_name = name

    def register_table(self, name: str, table: Table) -> None:
        """Register a table for the Section 5 extensions."""
        self._tables[name] = table.with_name(name)
        self._table_graph_cache.pop(name, None)

    def register_view(self, name: str, query: "ast.Query",
                      materialized: PathPropertyGraph) -> None:
        """Register a GRAPH VIEW with its defining query and current result."""
        self._views[name] = query
        self._view_cache[name] = materialized.with_name(name)

    def register_path_view(self, name: str, clause: "ast.PathClause") -> None:
        """Register a persistent PATH view definition."""
        self._path_views[name] = clause

    # ------------------------------------------------------------------
    def has_graph(self, name: str) -> bool:
        return (
            name in self._graphs
            or name in self._view_cache
            or name in self._tables
        )

    def graph(self, name: str) -> PathPropertyGraph:
        """Resolve *name* to a graph: base graph, view, or table-as-graph."""
        if name in self._graphs:
            return self._graphs[name]
        if name in self._view_cache:
            return self._view_cache[name]
        if name in self._tables:
            if name not in self._table_graph_cache:
                self._table_graph_cache[name] = table_as_graph(
                    self._tables[name], name
                )
            return self._table_graph_cache[name]
        raise UnknownGraphError(name)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def path_view(self, name: str) -> Optional["ast.PathClause"]:
        return self._path_views.get(name)

    def view_query(self, name: str) -> Optional["ast.Query"]:
        return self._views.get(name)

    def default_graph(self) -> Optional[PathPropertyGraph]:
        if self.default_graph_name is None:
            return None
        return self.graph(self.default_graph_name)

    # ------------------------------------------------------------------
    def graph_names(self):
        """All resolvable graph names (base graphs and views)."""
        return sorted(set(self._graphs) | set(self._view_cache))

    def table_names(self):
        return sorted(self._tables)

    def path_view_names(self):
        return sorted(self._path_views)
