"""The concurrent G-CORE query server.

:class:`GCoreServer` exposes one :class:`~repro.engine.GCoreEngine` over
HTTP/asyncio to many concurrent clients:

* ``POST /query`` — one-shot statements; ``POST /prepare`` +
  ``POST /execute`` — the parameterized hot loop; ``GET /explain`` —
  the planner sketch; ``POST /update`` — graph deltas;
* every read runs against an **MVCC snapshot**
  (:meth:`GCoreEngine.snapshot <repro.engine.GCoreEngine.snapshot>`):
  the request pins a consistent catalog version for its lifetime while
  updates land on later epochs, and the pinned graph versions are
  refcount-pruned when the request finishes;
* queries execute on a thread pool of ``max_in_flight`` workers behind
  **admission control** (:mod:`repro.server.admission`): a bounded wait
  queue, 503 load shedding past it, a per-request timeout (408) and a
  row limit with a ``truncated`` response flag;
* ``GET /health`` never touches engine locks — it stays responsive
  while a long update holds the write path — and ``GET /stats`` reports
  cache, MVCC and admission counters.

The wire formats live in :mod:`repro.server.protocol` and are documented
with runnable examples in ``docs/http-api.md``.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from ..config import ExecutionConfig
from ..engine import GCoreEngine, PreparedQuery
from ..errors import GCoreError
from .admission import AdmissionController
from .http import Request, read_request, write_response
from .protocol import (
    ApiError,
    BadRequest,
    MethodNotAllowed,
    NotFound,
    RequestTimeout,
    decode_config,
    decode_params,
    delta_from_json,
    dumps,
    error_envelope,
    serialize_result,
)

__all__ = ["GCoreServer", "ServerConfig", "ServerThread", "run_in_thread"]


class ServerConfig:
    """Tunables for one :class:`GCoreServer` instance."""

    __slots__ = (
        "host",
        "port",
        "max_in_flight",
        "max_queue",
        "default_timeout_ms",
        "max_timeout_ms",
        "default_row_limit",
        "max_row_limit",
        "max_body_bytes",
        "max_statements",
        "workers",
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7687,
        max_in_flight: int = 8,
        max_queue: int = 16,
        default_timeout_ms: int = 30_000,
        max_timeout_ms: int = 300_000,
        default_row_limit: int = 10_000,
        max_row_limit: int = 100_000,
        max_body_bytes: int = 8 * 1024 * 1024,
        max_statements: int = 256,
        workers: int = 1,
    ) -> None:
        self.host = host
        #: 0 binds an ephemeral port (tests); the bound port is
        #: reported by :attr:`GCoreServer.port` after ``start()``.
        self.port = port
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.default_timeout_ms = default_timeout_ms
        self.max_timeout_ms = max_timeout_ms
        self.default_row_limit = default_row_limit
        self.max_row_limit = max_row_limit
        self.max_body_bytes = max_body_bytes
        #: size of the /prepare handle registry (oldest evicted first)
        self.max_statements = max_statements
        #: morsel worker-pool size queries run at when the request body
        #: carries no explicit ``"config"`` (1 = serial, the default)
        self.workers = workers


Handler = Callable[[Request], Awaitable[Dict[str, Any]]]


class GCoreServer:
    """Serve one engine to many concurrent HTTP clients (asyncio)."""

    def __init__(
        self, engine: GCoreEngine, config: Optional[ServerConfig] = None
    ) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        self.port: Optional[int] = None  # bound port, set by start()
        self._admission = AdmissionController(
            self.config.max_in_flight, self.config.max_queue
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_in_flight,
            thread_name_prefix="gcore-query",
        )
        # statement_id -> (prepared, config-or-None from /prepare)
        self._statements: "OrderedDict[str, Tuple[PreparedQuery, Optional[ExecutionConfig]]]" = (
            OrderedDict()
        )
        self._statement_seq = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._started_at = time.monotonic()
        self.requests_total = 0
        self.timeouts_total = 0
        self._routes: Dict[Tuple[str, str], Handler] = {
            ("POST", "/query"): self._post_query,
            ("POST", "/analyze"): self._post_analyze,
            ("POST", "/prepare"): self._post_prepare,
            ("POST", "/execute"): self._post_execute,
            ("POST", "/update"): self._post_update,
            ("GET", "/explain"): self._get_explain,
            ("GET", "/health"): self._get_health,
            ("GET", "/stats"): self._get_stats,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    @property
    def url(self) -> str:
        """The server's base URL (valid after :meth:`start`)."""
        return f"http://{self.config.host}:{self.port}"

    async def stop(self) -> None:
        """Stop accepting connections and release the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=False)
        if self._stopped is not None:
            self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` runs (the serve-forever primitive)."""
        assert self._stopped is not None, "server not started"
        await self._stopped.wait()

    async def serve_forever(self) -> None:
        """``start()`` + block until stopped."""
        await self.start()
        await self.wait_stopped()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(
                    reader, self.config.max_body_bytes
                )
            except ApiError as error:
                status, payload = error_envelope(error)
                write_response(writer, status, dumps(payload))
                return
            if request is None:
                return
            self.requests_total += 1
            status, payload = await self._dispatch(request)
            write_response(writer, status, dumps(payload))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        except Exception as error:  # never let a request kill the loop
            try:
                status, payload = error_envelope(error)
                write_response(writer, status, dumps(payload))
            except Exception:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, request: Request) -> Tuple[int, Dict[str, Any]]:
        handler = self._routes.get((request.method, request.path))
        try:
            if handler is None:
                known = {path for _method, path in self._routes}
                if request.path in known:
                    raise MethodNotAllowed(
                        f"{request.method} is not supported on {request.path}"
                    )
                raise NotFound(f"no such endpoint: {request.path}")
            return 200, await handler(request)
        except (GCoreError, ApiError) as error:
            return error_envelope(error)

    # ------------------------------------------------------------------
    # Request plumbing: admission, timeout, executor
    # ------------------------------------------------------------------
    def _timeout_seconds(self, body: Dict[str, Any]) -> float:
        raw = body.get("timeout_ms", self.config.default_timeout_ms)
        if not isinstance(raw, (int, float)) or isinstance(raw, bool) or raw <= 0:
            raise BadRequest("'timeout_ms' must be a positive number")
        return min(float(raw), float(self.config.max_timeout_ms)) / 1000.0

    def _row_limit(self, body: Dict[str, Any]) -> int:
        raw = body.get("max_rows", self.config.default_row_limit)
        if not isinstance(raw, int) or isinstance(raw, bool) or raw < 1:
            raise BadRequest("'max_rows' must be a positive integer")
        return min(raw, self.config.max_row_limit)

    def _effective_config(
        self, requested: Optional[ExecutionConfig]
    ) -> Optional[ExecutionConfig]:
        """The ExecutionConfig a query runs at: request > server workers.

        A request-supplied config is authoritative (including
        ``parallelism``). Without one, a server started with
        ``ServerConfig.workers > 1`` runs the default lattice point at
        that parallelism; otherwise None keeps the engine default.
        """
        if requested is not None:
            return requested
        if self.config.workers > 1:
            return ExecutionConfig(parallelism=self.config.workers)
        return None

    def _release_slot(self, future: "asyncio.Future[Any]") -> None:
        self._admission.release()
        if not future.cancelled():
            future.exception()  # consume, silencing the unretrieved warning

    async def _run_admitted(
        self, work: Callable[[], Dict[str, Any]], timeout_s: float
    ) -> Dict[str, Any]:
        """Run *work* on the query pool under admission + timeout.

        The admission slot is released when the worker *finishes*, not
        when the response goes out: a timed-out (408) query keeps its
        slot busy until the engine actually returns, so in-flight counts
        reflect true load and shedding stays honest.
        """
        await self._admission.acquire()
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._pool, work)
        future.add_done_callback(self._release_slot)
        try:
            return await asyncio.wait_for(future, timeout_s)
        except asyncio.TimeoutError:
            self.timeouts_total += 1
            raise RequestTimeout(
                f"request exceeded its {timeout_s * 1000:.0f} ms budget; "
                f"the result was discarded"
            ) from None

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    async def _post_query(self, request: Request) -> Dict[str, Any]:
        body = request.json_object()
        text = body.get("query")
        if not isinstance(text, str) or not text.strip():
            raise BadRequest("'query' must be a non-empty string")
        params = decode_params(body.get("params"))
        config = self._effective_config(decode_config(body.get("config")))
        strict = body.get("strict", False)
        if not isinstance(strict, bool):
            raise BadRequest("'strict' must be a boolean")
        timeout_s = self._timeout_seconds(body)
        row_limit = self._row_limit(body)
        engine = self.engine

        def work() -> Dict[str, Any]:
            started = time.monotonic()
            with engine.snapshot() as snapshot:
                result = snapshot.run(text, params, config=config,
                                      strict=strict)
                payload = serialize_result(result, row_limit)
                epochs = {
                    name: snapshot.epoch(name)
                    for name in snapshot.catalog.graph_names()
                }
            payload["epochs"] = epochs
            payload["elapsed_ms"] = round(
                (time.monotonic() - started) * 1000, 3
            )
            return payload

        return await self._run_admitted(work, timeout_s)

    async def _post_analyze(self, request: Request) -> Dict[str, Any]:
        """Static analysis only: diagnostics in, nothing executed.

        Always answers 200 for analyzable input — a statement that does
        not even parse comes back as a ``GC001`` diagnostic in the same
        envelope, not as an error response (``docs/analysis.md``).
        """
        body = request.json_object()
        text = body.get("query")
        if not isinstance(text, str) or not text.strip():
            raise BadRequest("'query' must be a non-empty string")
        timeout_s = self._timeout_seconds(body)
        engine = self.engine

        def work() -> Dict[str, Any]:
            started = time.monotonic()
            with engine.snapshot() as snapshot:
                payload = snapshot.analyze(text).to_json()
            payload["elapsed_ms"] = round(
                (time.monotonic() - started) * 1000, 3
            )
            return payload

        return await self._run_admitted(work, timeout_s)

    async def _post_prepare(self, request: Request) -> Dict[str, Any]:
        body = request.json_object()
        text = body.get("query")
        if not isinstance(text, str) or not text.strip():
            raise BadRequest("'query' must be a non-empty string")
        # The config is validated now (a bad one should 422 at prepare
        # time, not at first execute) and pinned to the handle; /execute
        # bodies may still override it per call.
        pinned = decode_config(body.get("config"))
        prepared = self.engine.prepare(text)  # parses; raises ParseError
        statement_id = f"stmt-{next(self._statement_seq)}"
        self._statements[statement_id] = (prepared, pinned)
        while len(self._statements) > self.config.max_statements:
            self._statements.popitem(last=False)
        return {
            "statement_id": statement_id,
            "params": sorted(prepared.param_names),
        }

    async def _post_execute(self, request: Request) -> Dict[str, Any]:
        body = request.json_object()
        statement_id = body.get("statement_id")
        entry = self._statements.get(statement_id)
        if entry is None:
            raise NotFound(f"unknown statement_id: {statement_id!r}")
        prepared, pinned = entry
        params = decode_params(body.get("params"))
        requested = decode_config(body.get("config"))
        config = self._effective_config(
            requested if requested is not None else pinned
        )
        timeout_s = self._timeout_seconds(body)
        row_limit = self._row_limit(body)
        engine = self.engine

        def work() -> Dict[str, Any]:
            started = time.monotonic()
            with engine.snapshot() as snapshot:
                result = snapshot.execute_prepared(
                    prepared, params, config=config
                )
                payload = serialize_result(result, row_limit)
            payload["statement_id"] = statement_id
            payload["elapsed_ms"] = round(
                (time.monotonic() - started) * 1000, 3
            )
            return payload

        return await self._run_admitted(work, timeout_s)

    async def _post_update(self, request: Request) -> Dict[str, Any]:
        body = request.json_object()
        graph_name = body.get("graph")
        if not isinstance(graph_name, str) or not graph_name:
            raise BadRequest("'graph' must name a registered base graph")
        delta = delta_from_json(body.get("ops"))
        timeout_s = self._timeout_seconds(body)
        engine = self.engine

        def work() -> Dict[str, Any]:
            started = time.monotonic()
            new_graph = engine.apply_update(graph_name, delta)
            return {
                "graph": graph_name,
                "epoch": engine.catalog.epoch(graph_name),
                "applied_ops": len(delta),
                "node_count": len(new_graph.nodes),
                "edge_count": len(new_graph.edges),
                "stale_views": engine.stale_views(),
                "elapsed_ms": round((time.monotonic() - started) * 1000, 3),
            }

        return await self._run_admitted(work, timeout_s)

    async def _get_explain(self, request: Request) -> Dict[str, Any]:
        text = request.query.get("query")
        if not text or not text.strip():
            raise BadRequest(
                "pass the statement in the 'query' URL parameter"
            )
        engine = self.engine

        def work() -> Dict[str, Any]:
            with engine.snapshot() as snapshot:
                return {
                    "explain": snapshot.explain(text),
                    "plan_cached": engine.is_plan_cached(text),
                }

        # EXPLAIN takes the engine lock (plan-cache probe): keep it off
        # the event loop so /health stays responsive, but skip admission
        # — it runs no query.
        return await asyncio.get_running_loop().run_in_executor(None, work)

    async def _get_health(self, request: Request) -> Dict[str, Any]:
        """Liveness, lock-free: responsive even during a long update."""
        return {
            "status": "ok",
            "uptime_ms": round((time.monotonic() - self._started_at) * 1000),
            "in_flight": self._admission.in_flight,
            "queued": self._admission.queued,
            "requests_total": self.requests_total,
        }

    async def _get_stats(self, request: Request) -> Dict[str, Any]:
        engine = self.engine

        def work() -> Dict[str, Any]:
            from ..eval.parallel import fallback_counts

            counts = fallback_counts()
            return {
                "plan_cache": engine.plan_cache_info(),
                "mvcc": engine.mvcc_info(),
                "graphs": engine.catalog_info(),
                "prepared_statements": len(self._statements),
                "parallel_fallbacks": {
                    "total": sum(counts.values()),
                    "by_site": counts,
                },
            }

        # catalog_info/plan_cache_info take the engine lock; run off-loop
        # (see _get_explain) and merge the loop-confined counters after.
        payload = await asyncio.get_running_loop().run_in_executor(None, work)
        payload["admission"] = self._admission.info()
        payload["timeouts_total"] = self.timeouts_total
        payload["requests_total"] = self.requests_total
        return payload


# ---------------------------------------------------------------------------
# Thread harness (tests, docs examples, embedding in sync programs)
# ---------------------------------------------------------------------------

class ServerThread:
    """A :class:`GCoreServer` running on a daemon thread's event loop."""

    def __init__(
        self,
        server: GCoreServer,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.server = server
        self.engine = server.engine
        self._thread = thread
        self._loop = loop

    @property
    def url(self) -> str:
        return self.server.url

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join its thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        )
        future.result(timeout=timeout)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def run_in_thread(
    engine: GCoreEngine, config: Optional[ServerConfig] = None
) -> ServerThread:
    """Start a server on a background thread and wait until it is bound.

    The returned :class:`ServerThread` exposes the bound ``url`` and a
    blocking ``stop()``; it also works as a context manager. Pass a
    :class:`ServerConfig` with ``port=0`` to bind an ephemeral port —
    what the test suite and the docs example runner do.
    """
    server = GCoreServer(engine, config)
    started = threading.Event()
    box: Dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop
        try:
            try:
                loop.run_until_complete(server.start())
            except Exception as error:
                box["error"] = error
                return
            finally:
                started.set()
            loop.run_until_complete(server.wait_stopped())
            # Let in-flight handler tasks finish writing their responses.
            pending = [
                task
                for task in asyncio.all_tasks(loop)
                if not task.done()
            ]
            if pending:
                loop.run_until_complete(
                    asyncio.wait(pending, timeout=1.0)
                )
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=runner, name="gcore-server", daemon=True
    )
    thread.start()
    started.wait(timeout=10.0)
    if "error" in box:
        raise box["error"]
    if not started.is_set() or server.port is None:
        raise RuntimeError("server failed to start within 10 s")
    return ServerThread(server, thread, box["loop"])
