"""The wire protocol: JSON envelopes, result encoding, the delta format.

Everything the HTTP server puts on (or accepts from) the wire is defined
here, so ``docs/http-api.md`` has a single module to stay in sync with:

* **error envelopes** — every failure is
  ``{"error": {"code", "message", "status"}}``; the ``code`` values come
  from the :class:`~repro.errors.GCoreError` hierarchy (each class
  carries a stable ``code``/``http_status``) plus the server-level
  :class:`ApiError` codes (``bad_request``, ``overloaded``, ``timeout``,
  ``not_found``, ``payload_too_large``);
* **result encoding** — SELECT tables become
  ``{"kind": "table", "columns", "rows", "row_count", "truncated"}``
  with cells encoded like the graph JSON format (:mod:`repro.model.io`:
  dates as ``{"$date": "YYYY-MM-DD"}``, multi-valued properties as
  sorted lists); CONSTRUCT graphs become ``{"kind": "graph", ...}``
  embedding :func:`~repro.model.io.graph_to_dict`;
* **the delta format** — ``POST /update`` carries a JSON array of
  operations mirroring the :class:`~repro.model.delta.GraphDelta`
  builder API (``{"op": "add_node", "id": ..., "labels": [...],
  "properties": {...}}`` and friends), decoded by :func:`delta_from_json`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from ..config import ExecutionConfig
from ..errors import GCoreError
from ..model.graph import PathPropertyGraph
from ..model.io import graph_to_dict
from ..model.values import Date
from ..model.delta import GraphDelta
from ..table import Table

__all__ = [
    "ApiError",
    "BadRequest",
    "MethodNotAllowed",
    "NotFound",
    "OverloadedError",
    "PayloadTooLarge",
    "RequestTimeout",
    "decode_config",
    "decode_params",
    "delta_from_json",
    "dumps",
    "error_envelope",
    "serialize_result",
]


# ---------------------------------------------------------------------------
# Server-level errors (transport/admission failures, not query errors)
# ---------------------------------------------------------------------------

class ApiError(Exception):
    """A server-level failure with a stable wire code and HTTP status."""

    code = "internal_error"
    http_status = 500

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class BadRequest(ApiError):
    """Malformed request: invalid JSON, missing/mistyped fields."""

    code = "bad_request"
    http_status = 400


class NotFound(ApiError):
    """Unknown route or unknown prepared-statement handle."""

    code = "not_found"
    http_status = 404


class MethodNotAllowed(ApiError):
    """The route exists but not for this HTTP method."""

    code = "method_not_allowed"
    http_status = 405


class OverloadedError(ApiError):
    """Admission control shed this request (in-flight + queue full)."""

    code = "overloaded"
    http_status = 503


class RequestTimeout(ApiError):
    """The per-request timeout expired before the query finished."""

    code = "timeout"
    http_status = 408


class PayloadTooLarge(ApiError):
    """The request body exceeded the configured size limit."""

    code = "payload_too_large"
    http_status = 413


def error_envelope(error: Exception) -> Tuple[int, Dict[str, Any]]:
    """Map any exception to ``(http_status, envelope_dict)``.

    :class:`~repro.errors.GCoreError` and :class:`ApiError` instances
    carry their own stable code and status; anything else is a 500
    ``internal_error`` (the message is included — this is a debugging
    server, not a hardened public endpoint).
    """
    if isinstance(error, (GCoreError, ApiError)):
        status = error.http_status
        code = error.code
    else:
        status = 500
        code = "internal_error"
    return status, {
        "error": {"code": code, "message": str(error), "status": status}
    }


# ---------------------------------------------------------------------------
# Value encoding (mirrors repro.model.io)
# ---------------------------------------------------------------------------

def _encode_value(value: Any) -> Any:
    if isinstance(value, Date):
        return {"$date": str(value)}
    if isinstance(value, (frozenset, set)):
        return sorted(
            (_encode_value(v) for v in value),
            key=lambda v: (str(type(v)), str(v)),
        )
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)  # walks, bindings: debug-printable, not round-trippable


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$date"}:
            return Date.parse(value["$date"])
        raise BadRequest(f"unrecognized value encoding: {value!r}")
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def decode_params(raw: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Decode the ``params`` object of /query and /execute bodies."""
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise BadRequest("'params' must be a JSON object")
    return {name: _decode_value(value) for name, value in raw.items()}


def decode_config(raw: Any) -> Optional[ExecutionConfig]:
    """Decode the ``config`` object of /query, /prepare and /execute.

    ``None`` means "the request carried no config" — the server then
    applies its own default (e.g. ``ServerConfig.workers``). Invalid
    axis values and unknown keys surface as ``validation_error`` (422)
    straight from :meth:`ExecutionConfig.from_json
    <repro.config.ExecutionConfig.from_json>`.
    """
    if raw is None:
        return None
    return ExecutionConfig.from_json(raw)


# ---------------------------------------------------------------------------
# Result encoding
# ---------------------------------------------------------------------------

def serialize_result(result: Any, row_limit: Optional[int]) -> Dict[str, Any]:
    """Encode a query result for the wire, honoring the row limit.

    Tables are truncated to *row_limit* rows with ``"truncated": true``
    flagging the cut (``row_count`` still reports the full size). Graphs
    are returned whole — a CONSTRUCT's graph is one value, not a row
    stream — with node/edge/path counts alongside.
    """
    if isinstance(result, Table):
        rows = result.rows
        truncated = row_limit is not None and len(rows) > row_limit
        if truncated:
            rows = rows[:row_limit]
        return {
            "kind": "table",
            "columns": list(result.columns),
            "rows": [[_encode_value(cell) for cell in row] for row in rows],
            "row_count": len(result.rows),
            "truncated": truncated,
        }
    if isinstance(result, PathPropertyGraph):
        return {
            "kind": "graph",
            "graph": graph_to_dict(result),
            "node_count": len(result.nodes),
            "edge_count": len(result.edges),
            "path_count": len(result.paths),
            "truncated": False,
        }
    raise BadRequest(f"result type {type(result).__name__} is not servable")


# ---------------------------------------------------------------------------
# The delta wire format
# ---------------------------------------------------------------------------

def _field(op: Dict[str, Any], name: str, index: int) -> Any:
    try:
        return op[name]
    except KeyError:
        raise BadRequest(
            f"update op #{index} ({op.get('op', '?')}) is missing "
            f"field {name!r}"
        ) from None


def _decode_properties(raw: Any, index: int) -> Dict[str, Any]:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise BadRequest(f"update op #{index}: 'properties' must be an object")
    return {key: _decode_value(value) for key, value in raw.items()}


def delta_from_json(ops: Any) -> GraphDelta:
    """Decode the ``ops`` array of a ``POST /update`` body to a delta.

    Each element names one :class:`~repro.model.delta.GraphDelta` builder
    call; unknown or malformed operations raise :class:`BadRequest`
    before anything touches the graph (deltas are all-or-nothing).
    """
    if not isinstance(ops, list) or not ops:
        raise BadRequest("'ops' must be a non-empty JSON array")
    delta = GraphDelta()
    for index, op in enumerate(ops):
        if not isinstance(op, dict):
            raise BadRequest(f"update op #{index} must be a JSON object")
        kind = op.get("op")
        if kind == "add_node":
            delta.add_node(
                _field(op, "id", index),
                labels=op.get("labels") or (),
                properties=_decode_properties(op.get("properties"), index),
            )
        elif kind == "remove_node":
            delta.remove_node(_field(op, "id", index))
        elif kind == "add_edge":
            delta.add_edge(
                _field(op, "id", index),
                _field(op, "source", index),
                _field(op, "target", index),
                labels=op.get("labels") or (),
                properties=_decode_properties(op.get("properties"), index),
            )
        elif kind == "remove_edge":
            delta.remove_edge(_field(op, "id", index))
        elif kind == "add_label":
            delta.add_label(_field(op, "id", index), _field(op, "label", index))
        elif kind == "remove_label":
            delta.remove_label(
                _field(op, "id", index), _field(op, "label", index)
            )
        elif kind == "set_property":
            delta.set_property(
                _field(op, "id", index),
                _field(op, "key", index),
                _decode_value(_field(op, "value", index)),
            )
        elif kind == "remove_property":
            delta.remove_property(
                _field(op, "id", index), _field(op, "key", index)
            )
        else:
            raise BadRequest(f"update op #{index}: unknown op {kind!r}")
    return delta


def dumps(payload: Dict[str, Any]) -> bytes:
    """Stable JSON encoding for response bodies."""
    return json.dumps(payload, separators=(", ", ": ")).encode("utf-8")
