"""repro.server — the concurrent HTTP query server.

Serve one :class:`~repro.engine.GCoreEngine` to many clients over a
small JSON/HTTP API with MVCC snapshot isolation for every read and
admission control for overload. Start it from the command line::

    PYTHONPATH=src python -m repro.server --dataset paper --port 7687

or embed it (tests, notebooks)::

    from repro.server import ServerConfig, run_in_thread

    handle = run_in_thread(engine, ServerConfig(port=0))
    print(handle.url)   # e.g. http://127.0.0.1:49213
    ...
    handle.stop()

See ``docs/http-api.md`` for the endpoint reference and
``docs/consistency.md`` for the MVCC model.
"""

from .app import GCoreServer, ServerConfig, ServerThread, run_in_thread
from .protocol import (
    ApiError,
    BadRequest,
    MethodNotAllowed,
    NotFound,
    OverloadedError,
    PayloadTooLarge,
    RequestTimeout,
)

__all__ = [
    "ApiError",
    "BadRequest",
    "GCoreServer",
    "MethodNotAllowed",
    "NotFound",
    "OverloadedError",
    "PayloadTooLarge",
    "RequestTimeout",
    "ServerConfig",
    "ServerThread",
    "run_in_thread",
]
