"""Admission control: a bounded in-flight pool with a bounded wait queue.

The server executes queries on a thread pool of ``max_in_flight``
workers. Admission keeps the pool from building an unbounded backlog:
up to ``max_queue`` requests may wait for a slot, and anything beyond
that is **shed immediately** with a 503 ``overloaded`` envelope — the
client can retry with backoff, and the server never accumulates latent
work it cannot serve (see ``docs/http-api.md``).

Slots are granted FIFO. A slot is released only when its worker
actually finishes: a request that *times out* (408) hands its response
back early, but the abandoned worker still occupies the slot until the
query completes — admission therefore reflects true engine load, not
merely open connections.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque

from .protocol import OverloadedError

__all__ = ["AdmissionController"]


class AdmissionController:
    """FIFO slot pool with load shedding; event-loop-confined."""

    def __init__(self, max_in_flight: int, max_queue: int) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.in_flight = 0
        self.admitted_total = 0
        self.shed_total = 0
        self._waiters: Deque[asyncio.Future] = deque()

    @property
    def queued(self) -> int:
        return len(self._waiters)

    async def acquire(self) -> None:
        """Take a slot, waiting in the bounded queue if the pool is full.

        Raises :class:`~repro.server.protocol.OverloadedError` (-> 503)
        when the queue is full too. Must run on the event loop thread.
        """
        if self.in_flight < self.max_in_flight and not self._waiters:
            self.in_flight += 1
            self.admitted_total += 1
            return
        if len(self._waiters) >= self.max_queue:
            self.shed_total += 1
            raise OverloadedError(
                f"server over capacity ({self.in_flight} in flight, "
                f"{len(self._waiters)} queued); retry with backoff"
            )
        future = asyncio.get_running_loop().create_future()
        self._waiters.append(future)
        try:
            await future  # release() transfers a slot to us
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # Granted and cancelled in the same tick: give it back.
                self.release()
            else:
                try:
                    self._waiters.remove(future)
                except ValueError:
                    pass
            raise
        self.admitted_total += 1

    def release(self) -> None:
        """Return a slot; hands it to the oldest waiter when one exists.

        Called from the event loop (executor-future done callbacks run
        there), so no extra locking is needed.
        """
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():
                # Slot transfers directly: in_flight stays constant.
                future.set_result(None)
                return
        self.in_flight -= 1

    def info(self) -> dict:
        """Counters for ``GET /stats`` and ``GET /health``."""
        return {
            "in_flight": self.in_flight,
            "queued": self.queued,
            "max_in_flight": self.max_in_flight,
            "max_queue": self.max_queue,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
        }
