"""A minimal asyncio HTTP/1.1 layer (stdlib only, one-shot connections).

The query server needs exactly enough HTTP to speak JSON with ``curl``
and standard clients: request-line + headers + ``Content-Length`` body
in, status + headers + body out, one request per connection
(``Connection: close``). Anything fancier — keep-alive, chunked
encoding, TLS — belongs in a reverse proxy in front, which is how this
server is meant to be deployed (see ``docs/http-api.md``).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from .protocol import BadRequest, PayloadTooLarge

__all__ = ["Request", "read_request", "write_response"]

_MAX_REQUEST_LINE = 8 * 1024
_MAX_HEADER_BYTES = 32 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        #: first value per query-string key, already URL-decoded
        self.query = query
        #: header names lower-cased
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The body parsed as JSON; :class:`BadRequest` when malformed."""
        import json

        if not self.body:
            raise BadRequest("request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise BadRequest(f"malformed JSON body: {error}") from None

    def json_object(self) -> Dict[str, Any]:
        payload = self.json()
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[Request]:
    """Parse one request from *reader*; None on a closed connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    if len(request_line) > _MAX_REQUEST_LINE:
        raise BadRequest("request line too long")
    try:
        method, target, _version = (
            request_line.decode("latin-1").strip().split(" ", 2)
        )
    except ValueError:
        raise BadRequest("malformed request line") from None

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        header_bytes += len(line)
        if header_bytes > _MAX_HEADER_BYTES:
            raise BadRequest("request headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise BadRequest("invalid Content-Length") from None
        if length > max_body_bytes:
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit"
            )
        if length:
            body = await reader.readexactly(length)

    split = urlsplit(target)
    query = {
        key: values[0]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    return Request(
        method.upper(), unquote(split.path), query, headers, body
    )


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> None:
    """Queue one response on *writer* (the caller drains and closes)."""
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
