"""``python -m repro.server`` — run the query server from the shell.

Loads a dataset (or a binary snapshot) into a fresh engine and serves
it until interrupted::

    PYTHONPATH=src python -m repro.server --dataset paper --port 7687
    PYTHONPATH=src python -m repro.server --snapshot catalog.gsnap

``--dataset`` accepts any name from the :mod:`repro.datasets`
registry; ``--snapshot PATH`` skips generation entirely and boots the
engine from a saved snapshot via ``GCoreEngine.open`` — the graphs
stay mmap-backed, so start-up cost is the file open, not a rebuild.
See ``docs/http-api.md`` for the endpoints and a full curl session.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Optional

from .. import datasets
from ..engine import GCoreEngine
from .app import GCoreServer, ServerConfig


def build_engine(
    dataset: str,
    seed: int,
    persons: int,
    snapshot: Optional[str] = None,
) -> GCoreEngine:
    if snapshot is not None:
        return GCoreEngine.open(snapshot)
    engine = GCoreEngine()
    if dataset == "snb":
        loaded = datasets.load("snb", scale=persons, seed=seed)
    else:
        loaded = datasets.load(dataset)
    loaded.install(engine)
    return engine


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a G-CORE engine over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7687)
    parser.add_argument(
        "--dataset", choices=datasets.available(), default="paper"
    )
    parser.add_argument(
        "--snapshot",
        metavar="PATH",
        default=None,
        help="boot from a saved binary snapshot (overrides --dataset)",
    )
    parser.add_argument(
        "--persons", type=int, default=200, help="SNB graph size"
    )
    parser.add_argument("--seed", type=int, default=7, help="SNB seed")
    parser.add_argument("--max-in-flight", type=int, default=8)
    parser.add_argument("--max-queue", type=int, default=16)
    parser.add_argument("--timeout-ms", type=int, default=30_000)
    parser.add_argument("--row-limit", type=int, default=10_000)
    args = parser.parse_args(argv)

    engine = build_engine(
        args.dataset, args.seed, args.persons, snapshot=args.snapshot
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        default_timeout_ms=args.timeout_ms,
        default_row_limit=args.row_limit,
    )
    server = GCoreServer(engine, config)

    source = (
        f"snapshot={args.snapshot}" if args.snapshot
        else f"dataset={args.dataset}"
    )

    async def serve() -> None:
        await server.start()
        print(f"G-CORE server listening on {server.url} "
              f"({source}); Ctrl-C to stop")
        await server.wait_stopped()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
