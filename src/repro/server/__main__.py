"""``python -m repro.server`` — run the query server from the shell.

Loads a dataset into a fresh engine and serves it until interrupted::

    PYTHONPATH=src python -m repro.server --dataset paper --port 7687

``--dataset paper`` registers the paper's toy instances
(``social_graph`` as the default graph, ``company_graph``, and the
``orders`` table); ``--dataset snb`` generates the deterministic
SNB-like graph for load experiments. See ``docs/http-api.md`` for the
endpoints and a full curl session.
"""

from __future__ import annotations

import argparse
import asyncio

from ..datasets import (
    company_graph,
    generate_snb_graph,
    orders_table,
    social_graph,
)
from ..engine import GCoreEngine
from .app import GCoreServer, ServerConfig


def build_engine(dataset: str, seed: int, persons: int) -> GCoreEngine:
    engine = GCoreEngine()
    if dataset == "paper":
        engine.register_graph("social_graph", social_graph(), default=True)
        engine.register_graph("company_graph", company_graph())
        engine.register_table("orders", orders_table())
    elif dataset == "snb":
        graph = generate_snb_graph(persons=persons, seed=seed)
        engine.register_graph("snb", graph, default=True)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown dataset: {dataset}")
    return engine


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a G-CORE engine over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7687)
    parser.add_argument(
        "--dataset", choices=("paper", "snb"), default="paper"
    )
    parser.add_argument(
        "--persons", type=int, default=200, help="SNB graph size"
    )
    parser.add_argument("--seed", type=int, default=7, help="SNB seed")
    parser.add_argument("--max-in-flight", type=int, default=8)
    parser.add_argument("--max-queue", type=int, default=16)
    parser.add_argument("--timeout-ms", type=int, default=30_000)
    parser.add_argument("--row-limit", type=int, default=10_000)
    args = parser.parse_args(argv)

    engine = build_engine(args.dataset, args.seed, args.persons)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        default_timeout_ms=args.timeout_ms,
        default_row_limit=args.row_limit,
    )
    server = GCoreServer(engine, config)

    async def serve() -> None:
        await server.start()
        print(f"G-CORE server listening on {server.url} "
              f"(dataset={args.dataset}); Ctrl-C to stop")
        await server.wait_stopped()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
