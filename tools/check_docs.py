"""Documentation checker: links, anchors, and executable examples.

Two passes, both run by the CI ``docs`` job (and the tier-1 smoke in
``tests/docs/test_docs.py``):

1. **Links & anchors** — every relative markdown link in ``README.md``
   and ``docs/*.md`` must point at an existing file, and every
   ``#fragment`` (in-page or cross-page) must match a heading's GitHub
   anchor slug. External ``http(s)`` links are not fetched (CI must not
   depend on the network), and links that resolve outside the repo
   (e.g. the CI badge) are skipped.

2. **Examples** — fenced ``bash`` / ``python`` blocks in
   ``docs/http-api.md`` marked with ``<!-- docs-check: run -->`` are
   executed, in document order, against a **live server** booted
   in-process on an ephemeral port; the documented address
   ``localhost:7687`` is substituted with the real one. A non-zero exit
   (curl ``-sf`` turns HTTP errors into exit codes) fails the check, so
   the API reference cannot drift from the implementation.

Usage::

    python tools/check_docs.py --links-only
    PYTHONPATH=src python tools/check_docs.py        # links + examples
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — excluding images' leading "!" is handled at use site.
_LINK_RE = re.compile(r"(!?)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_RE = re.compile(r"^(```+|~~~+)\s*([A-Za-z0-9_+-]*)\s*$")
_RUN_MARKER = "<!-- docs-check: run -->"
_DOC_ADDRESS = "localhost:7687"


def _strip_code(markdown: str) -> List[str]:
    """The document's lines with fenced-code bodies blanked out."""
    lines = []
    fence = None
    for line in markdown.splitlines():
        match = _FENCE_RE.match(line.strip())
        if fence is None and match:
            fence = match.group(1)[0] * 3
            lines.append("")
            continue
        if fence is not None:
            if line.strip().startswith(fence):
                fence = None
            lines.append("")
            continue
        lines.append(line)
    return lines


def github_anchor(heading: str) -> str:
    """The GitHub anchor slug for a heading's text."""
    # inline code/links inside headings contribute their text only
    text = re.sub(r"[`*_]", "", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    slug = []
    for char in text.lower():
        if char.isalnum():
            slug.append(char)
        elif char in (" ", "-"):
            slug.append("-")
        # all other punctuation is dropped
    return "".join(slug)


def collect_anchors(path: Path) -> List[str]:
    """All heading anchors of a markdown file (with -1/-2 dedup)."""
    counts: Dict[str, int] = {}
    anchors: List[str] = []
    for line in _strip_code(path.read_text(encoding="utf-8")):
        match = _HEADING_RE.match(line)
        if not match:
            continue
        base = github_anchor(match.group(2))
        seen = counts.get(base, 0)
        counts[base] = seen + 1
        anchors.append(base if seen == 0 else f"{base}-{seen}")
    return anchors


def check_links(files: List[Path]) -> List[str]:
    """Validate every relative link and anchor; returns error strings."""
    errors: List[str] = []
    anchor_cache: Dict[Path, List[str]] = {}

    def anchors_of(path: Path) -> List[str]:
        if path not in anchor_cache:
            anchor_cache[path] = collect_anchors(path)
        return anchor_cache[path]

    for source in files:
        content = "\n".join(_strip_code(source.read_text(encoding="utf-8")))
        for match in _LINK_RE.finditer(content):
            is_image, target = match.group(1) == "!", match.group(2)
            if target.startswith(("http://", "https://", "mailto:")):
                continue  # external: not fetched (no network in CI)
            path_part, _sep, fragment = target.partition("#")
            if path_part:
                resolved = (source.parent / path_part).resolve()
                try:
                    resolved.relative_to(REPO_ROOT)
                except ValueError:
                    continue  # escapes the repo (e.g. the CI badge URL)
                if not resolved.exists():
                    errors.append(
                        f"{source.relative_to(REPO_ROOT)}: broken link "
                        f"-> {target}"
                    )
                    continue
            else:
                resolved = source
            if fragment and not is_image:
                if resolved.suffix != ".md":
                    continue
                if fragment not in anchors_of(resolved):
                    errors.append(
                        f"{source.relative_to(REPO_ROOT)}: broken anchor "
                        f"-> {target}"
                    )
    return errors


def extract_runnable(path: Path) -> List[Tuple[str, int, str]]:
    """(language, line_number, code) for each marked fenced block."""
    blocks: List[Tuple[str, int, str]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    index = 0
    while index < len(lines):
        if lines[index].strip() == _RUN_MARKER:
            probe = index + 1
            while probe < len(lines) and not lines[probe].strip():
                probe += 1
            match = _FENCE_RE.match(lines[probe].strip()) if probe < len(lines) else None
            if match:
                language = match.group(2) or "bash"
                fence = match.group(1)[0] * 3
                body = []
                probe += 1
                while probe < len(lines) and not lines[probe].strip().startswith(fence):
                    body.append(lines[probe])
                    probe += 1
                blocks.append((language, index + 1, "\n".join(body)))
                index = probe
        index += 1
    return blocks


def run_examples(doc: Path) -> List[str]:
    """Execute the marked examples against a live in-process server."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.server import ServerConfig, run_in_thread
    from repro.server.__main__ import build_engine

    blocks = extract_runnable(doc)
    if not blocks:
        return [f"{doc.relative_to(REPO_ROOT)}: no runnable examples found"]

    errors: List[str] = []
    handle = run_in_thread(
        build_engine("paper", seed=7, persons=200), ServerConfig(port=0)
    )
    address = f"127.0.0.1:{handle.server.port}"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    try:
        for language, line, code in blocks:
            code = code.replace(_DOC_ADDRESS, address)
            if language == "bash":
                command = ["bash", "-euo", "pipefail", "-c", code]
            elif language == "python":
                command = [sys.executable, "-c", code]
            else:
                errors.append(
                    f"{doc.name}:{line}: unsupported example language "
                    f"{language!r}"
                )
                continue
            proc = subprocess.run(
                command, capture_output=True, text=True, timeout=60,
                env=env, cwd=str(REPO_ROOT),
            )
            if proc.returncode != 0:
                errors.append(
                    f"{doc.name}:{line}: {language} example exited "
                    f"{proc.returncode}\n--- stdout ---\n{proc.stdout}"
                    f"\n--- stderr ---\n{proc.stderr}"
                )
            else:
                print(f"  ok  {doc.name}:{line} ({language})")
    finally:
        handle.stop()
    return errors


def doc_files() -> List[Path]:
    return [REPO_ROOT / "README.md"] + sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--links-only", action="store_true",
        help="skip executing the documented examples",
    )
    args = parser.parse_args(argv)

    files = doc_files()
    print(f"checking links/anchors in {len(files)} files ...")
    errors = check_links(files)

    if not args.links_only:
        print("executing documented examples against a live server ...")
        errors += run_examples(REPO_ROOT / "docs" / "http-api.md")

    if errors:
        print(f"\n{len(errors)} problem(s):", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print("docs check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
