#!/usr/bin/env python3
"""Repo-invariant lint: AST-level checks CI runs blocking.

Four invariants that ordinary linters cannot express:

1. **Error wire contract** — every ``GCoreError`` subclass in
   ``src/repro/errors.py`` and every ``ApiError`` subclass in
   ``src/repro/server/protocol.py`` must assign both ``code`` and
   ``http_status`` in its own class body. The pair is the HTTP error
   envelope's stable contract (``docs/http-api.md``); inheriting one
   silently is how codes drift.
2. **No new ``naive=True`` call sites** — the flag is a deprecated
   alias (see ``repro.config.NAIVE_CONFIG``); only the allow-listed
   shim/reference modules may still pass it.
3. **Commented fallbacks** — every ``except Exception`` in
   ``src/repro/eval/parallel.py`` must carry a comment (inline or as
   the handler's first line) saying *why* swallowing is safe; the
   module's whole design is silent degradation to the serial path, so
   an uncommented handler is indistinguishable from a bug.
4. **Fuzz corpus integrity** — every JSON under ``tests/fuzz/corpus/``
   must load as a counterexample, its query must parse as G-CORE, and
   replaying it against the fixed engine must come back clean (corpus
   entries record *fixed* bugs — see ``docs/fuzzing.md``).

Exit status: 0 clean, 1 violations (one per line on stdout).

Usage::

    python tools/lint_repo.py [--root PATH]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Dict, List, Set

#: Modules that may still pass naive=True: the deprecated-alias shim
#: lives in engine.py (warns + folds into NAIVE_CONFIG), and the
#: reference-oracle call sites in eval/match.py predate the config axis.
NAIVE_ALLOWLIST = {
    Path("src/repro/eval/match.py"),
}

ERROR_HIERARCHIES = {
    Path("src/repro/errors.py"): "GCoreError",
    Path("src/repro/server/protocol.py"): "ApiError",
}

PARALLEL_FALLBACKS = Path("src/repro/eval/parallel.py")

FUZZ_CORPUS = Path("tests/fuzz/corpus")


def check_error_contract(root: Path) -> List[str]:
    """Invariant 1: code + http_status in every error class body."""
    problems: List[str] = []
    for rel_path, base_name in ERROR_HIERARCHIES.items():
        path = root / rel_path
        tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }

        def in_hierarchy(name: str, seen: Set[str]) -> bool:
            if name == base_name:
                return True
            node = classes.get(name)
            if node is None or name in seen:
                return False
            seen.add(name)
            return any(
                in_hierarchy(b.id, seen)
                for b in node.bases
                if isinstance(b, ast.Name)
            )

        for name, node in sorted(classes.items()):
            if not in_hierarchy(name, set()):
                continue
            assigned = {
                target.id
                for stmt in node.body
                if isinstance(stmt, ast.Assign)
                for target in stmt.targets
                if isinstance(target, ast.Name)
            }
            assigned |= {
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
            for required in ("code", "http_status"):
                if required not in assigned:
                    problems.append(
                        f"{rel_path}:{node.lineno}: class {name} does not "
                        f"assign {required!r} in its own body (error "
                        f"envelope contract)"
                    )
    return problems


def check_naive_callsites(root: Path) -> List[str]:
    """Invariant 2: naive=True only in the allow-listed shim modules."""
    problems: List[str] = []
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(root)
        if rel in NAIVE_ALLOWLIST:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if (
                    keyword.arg == "naive"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    problems.append(
                        f"{rel}:{node.lineno}: new naive=True call site "
                        f"(pass config=NAIVE_CONFIG instead)"
                    )
    return problems


def check_parallel_fallbacks(root: Path) -> List[str]:
    """Invariant 3: parallel.py handlers are narrow and commented.

    Blanket ``except Exception`` / bare ``except:`` fallbacks are
    forbidden outright — they swallow ``AssertionError`` from worker
    invariants, which the differential fuzzer relies on surfacing; every
    remaining (named) handler must still carry a comment (inline or as
    the handler's first line) saying *why* catching is safe.
    """
    problems: List[str] = []
    path = root / PARALLEL_FALLBACKS
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped.startswith("except"):
            continue
        clause = stripped.split("#", 1)[0].strip()
        if clause.rstrip(":") in ("except", "except Exception") or clause.startswith(
            ("except Exception:", "except Exception as", "except BaseException")
        ):
            problems.append(
                f"{PARALLEL_FALLBACKS}:{index + 1}: blanket {clause!r} "
                f"fallback (name the exceptions — see "
                f"POOL_FALLBACK_EXCEPTIONS)"
            )
            continue
        if "#" in line:
            continue  # inline justification
        # Otherwise the handler body must open with a comment block.
        follower = lines[index + 1].strip() if index + 1 < len(lines) else ""
        if not follower.startswith("#"):
            problems.append(
                f"{PARALLEL_FALLBACKS}:{index + 1}: exception fallback "
                f"without a justifying comment"
            )
    return problems


def check_fuzz_corpus(root: Path) -> List[str]:
    """Invariant 4: corpus counterexamples load, parse, and replay clean."""
    corpus = root / FUZZ_CORPUS
    problems: List[str] = []
    if not corpus.is_dir():
        return [f"{FUZZ_CORPUS}: corpus directory missing"]
    entries = sorted(corpus.glob("*.json"))
    if not entries:
        return [f"{FUZZ_CORPUS}: corpus is empty"]
    # Prefer an already-importable repro (the test suite runs with
    # PYTHONPATH=src); fall back to the root being linted, as in the CI
    # lint-repo job, which sets no PYTHONPATH.
    try:
        from repro.fuzz import (
            build_engine,
            load_counterexample,
            replay_counterexample,
        )
    except ImportError:
        sys.path.insert(0, str((root / "src").resolve()))
        from repro.fuzz import (
            build_engine,
            load_counterexample,
            replay_counterexample,
        )

    engine = build_engine()
    for path in entries:
        rel = FUZZ_CORPUS / path.name
        try:
            entry = load_counterexample(path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            problems.append(f"{rel}: not a loadable counterexample: {exc}")
            continue
        try:
            engine.parse(entry.query)
        except Exception as exc:
            problems.append(f"{rel}: query does not parse: {exc}")
            continue
        fresh = replay_counterexample(entry, engine=engine)
        if fresh is not None:
            problems.append(
                f"{rel}: replay diverges again (kind {fresh.kind}) — "
                f"corpus entries must record fixed bugs"
            )
    return problems


def run_lint(root: Path) -> List[str]:
    problems: List[str] = []
    problems += check_error_contract(root)
    problems += check_naive_callsites(root)
    problems += check_parallel_fallbacks(root)
    problems += check_fuzz_corpus(root)
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    args = parser.parse_args(argv)
    problems = run_lint(Path(args.root))
    for problem in problems:
        print(problem)
    if problems:
        print(f"lint_repo: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    print("lint_repo: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
