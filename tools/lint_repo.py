#!/usr/bin/env python3
"""Repo-invariant lint: AST-level checks CI runs blocking.

Three invariants that ordinary linters cannot express:

1. **Error wire contract** — every ``GCoreError`` subclass in
   ``src/repro/errors.py`` and every ``ApiError`` subclass in
   ``src/repro/server/protocol.py`` must assign both ``code`` and
   ``http_status`` in its own class body. The pair is the HTTP error
   envelope's stable contract (``docs/http-api.md``); inheriting one
   silently is how codes drift.
2. **No new ``naive=True`` call sites** — the flag is a deprecated
   alias (see ``repro.config.NAIVE_CONFIG``); only the allow-listed
   shim/reference modules may still pass it.
3. **Commented fallbacks** — every ``except Exception`` in
   ``src/repro/eval/parallel.py`` must carry a comment (inline or as
   the handler's first line) saying *why* swallowing is safe; the
   module's whole design is silent degradation to the serial path, so
   an uncommented handler is indistinguishable from a bug.

Exit status: 0 clean, 1 violations (one per line on stdout).

Usage::

    python tools/lint_repo.py [--root PATH]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Dict, List, Set

#: Modules that may still pass naive=True: the deprecated-alias shim
#: lives in engine.py (warns + folds into NAIVE_CONFIG), and the
#: reference-oracle call sites in eval/match.py predate the config axis.
NAIVE_ALLOWLIST = {
    Path("src/repro/eval/match.py"),
}

ERROR_HIERARCHIES = {
    Path("src/repro/errors.py"): "GCoreError",
    Path("src/repro/server/protocol.py"): "ApiError",
}

PARALLEL_FALLBACKS = Path("src/repro/eval/parallel.py")


def check_error_contract(root: Path) -> List[str]:
    """Invariant 1: code + http_status in every error class body."""
    problems: List[str] = []
    for rel_path, base_name in ERROR_HIERARCHIES.items():
        path = root / rel_path
        tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }

        def in_hierarchy(name: str, seen: Set[str]) -> bool:
            if name == base_name:
                return True
            node = classes.get(name)
            if node is None or name in seen:
                return False
            seen.add(name)
            return any(
                in_hierarchy(b.id, seen)
                for b in node.bases
                if isinstance(b, ast.Name)
            )

        for name, node in sorted(classes.items()):
            if not in_hierarchy(name, set()):
                continue
            assigned = {
                target.id
                for stmt in node.body
                if isinstance(stmt, ast.Assign)
                for target in stmt.targets
                if isinstance(target, ast.Name)
            }
            assigned |= {
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
            for required in ("code", "http_status"):
                if required not in assigned:
                    problems.append(
                        f"{rel_path}:{node.lineno}: class {name} does not "
                        f"assign {required!r} in its own body (error "
                        f"envelope contract)"
                    )
    return problems


def check_naive_callsites(root: Path) -> List[str]:
    """Invariant 2: naive=True only in the allow-listed shim modules."""
    problems: List[str] = []
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(root)
        if rel in NAIVE_ALLOWLIST:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if (
                    keyword.arg == "naive"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    problems.append(
                        f"{rel}:{node.lineno}: new naive=True call site "
                        f"(pass config=NAIVE_CONFIG instead)"
                    )
    return problems


def check_parallel_fallbacks(root: Path) -> List[str]:
    """Invariant 3: every except Exception in parallel.py is commented."""
    problems: List[str] = []
    path = root / PARALLEL_FALLBACKS
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped.startswith("except Exception"):
            continue
        if "#" in line:
            continue  # inline justification
        # Otherwise the handler body must open with a comment block.
        follower = lines[index + 1].strip() if index + 1 < len(lines) else ""
        if not follower.startswith("#"):
            problems.append(
                f"{PARALLEL_FALLBACKS}:{index + 1}: bare 'except Exception' "
                f"fallback without a justifying comment"
            )
    return problems


def run_lint(root: Path) -> List[str]:
    problems: List[str] = []
    problems += check_error_contract(root)
    problems += check_naive_callsites(root)
    problems += check_parallel_fallbacks(root)
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    args = parser.parse_args(argv)
    problems = run_lint(Path(args.root))
    for problem in problems:
        print(problem)
    if problems:
        print(f"lint_repo: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    print("lint_repo: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
