#!/usr/bin/env python3
"""Baseline-aware mypy gate.

Runs mypy over the package (configuration lives in ``[tool.mypy]`` in
``pyproject.toml``) and splits its diagnostics against the committed
baseline ``tools/mypy_baseline.txt``:

* errors in files matching a baseline glob are printed as
  ``baseline:``-prefixed notices and do NOT fail the gate;
* errors anywhere else (new modules, and the fully-annotated
  ``repro.analysis`` package) fail the gate.

This keeps the CI job blocking without requiring a big-bang annotation
pass over pre-typing modules, and without an exact-line baseline that
would rot on every unrelated edit. Shrink the baseline over time;
never grow it.

Usage: ``python tools/run_mypy.py [extra mypy args...]``
Exit codes: 0 clean (or baseline-only), 1 new errors, 2 mypy crashed.
"""

from __future__ import annotations

import fnmatch
import pathlib
import re
import subprocess
import sys
from typing import List, Tuple

ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = ROOT / "tools" / "mypy_baseline.txt"

# "path:line: error: message  [code]" (column is optional).
_ERROR_LINE = re.compile(r"^(?P<path>[^:]+):\d+(?::\d+)?: error: ")


def load_baseline() -> List[str]:
    globs: List[str] = []
    for raw in BASELINE.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            globs.append(line)
    return globs


def is_baselined(path: str, globs: List[str]) -> bool:
    posix = pathlib.PurePath(path).as_posix()
    return any(fnmatch.fnmatch(posix, glob) for glob in globs)


def split_report(output: str, globs: List[str]) -> Tuple[List[str], List[str]]:
    """(blocking, baselined) mypy output lines.

    Non-error lines (notes, the summary) ride along with whichever
    bucket their preceding error landed in; leading notes are blocking.
    """
    blocking: List[str] = []
    baselined: List[str] = []
    current = blocking
    for line in output.splitlines():
        match = _ERROR_LINE.match(line)
        if match:
            current = baselined if is_baselined(match.group("path"), globs) else blocking
        elif line.startswith("Found ") or line.startswith("Success:"):
            continue  # recomputed below
        current.append(line)
    return blocking, baselined


def main(argv: List[str]) -> int:
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *argv],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode not in (0, 1):  # 2 = crash / bad config
        sys.stderr.write(proc.stdout + proc.stderr)
        return 2

    globs = load_baseline()
    blocking, baselined = split_report(proc.stdout, globs)
    blocking = [line for line in blocking if line.strip()]
    baselined = [line for line in baselined if line.strip()]

    for line in baselined:
        print(f"baseline: {line}")
    for line in blocking:
        print(line)
    print(
        f"mypy gate: {len(blocking)} blocking error(s), "
        f"{len(baselined)} baselined notice(s)"
    )
    return 1 if blocking else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
