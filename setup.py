"""Legacy setup shim (the offline environment lacks the `wheel` package,
so editable installs go through `setup.py develop`)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "G-CORE: a complete Python reproduction of the SIGMOD 2018 graph "
        "query language (Path Property Graphs, composable graph queries, "
        "paths as first-class citizens)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
